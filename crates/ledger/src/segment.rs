//! Structural segmentation of an entry stream — the mechanical half of
//! Appx. B "well-formedness".
//!
//! A well-formed ledger obeys the grammar (Fig. 3, Alg. 1/2):
//!
//! ```text
//! ledger   := genesis? element*
//! element  := batch | viewchange
//! batch    := (evidence nonces)? pre-prepare tx*
//! viewchange := view-change-set new-view
//! ```
//!
//! with the side conditions that evidence/nonce entries must be referenced
//! by the immediately following pre-prepare (same `evidence_seq`, matching
//! counts) and sequence numbers advance by one per batch within a view.
//! Deeper *validity* (signatures, Merkle roots, execution correctness) is
//! layered on top by `ia-ccf-core` (for fetched fragments) and
//! `ia-ccf-audit` (Alg. 4).

use ia_ccf_types::{LedgerEntry, SeqNum, View};

/// One structural unit of the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// The genesis entry (index 0 of a full ledger).
    Genesis {
        /// Entry index.
        at: usize,
    },
    /// A batch: optional evidence pair, the pre-prepare, its transactions.
    Batch {
        /// Entry index of the `P_{s−P}` evidence, when present.
        evidence_at: Option<usize>,
        /// Entry index of the `K_{s−P}` nonces, when present.
        nonces_at: Option<usize>,
        /// Entry index of the pre-prepare.
        pp_at: usize,
        /// Entry indices of the batch's `⟨t, i, o⟩` entries.
        tx_at: Vec<usize>,
        /// The batch's sequence number.
        seq: SeqNum,
        /// The batch's view.
        view: View,
    },
    /// A view change: the accepted view-change set and the new-view.
    ViewChange {
        /// Entry index of the view-change set.
        set_at: usize,
        /// Entry index of the new-view message.
        nv_at: usize,
        /// The new view.
        view: View,
    },
}

impl Segment {
    /// The sequence number, for batch segments.
    pub fn seq(&self) -> Option<SeqNum> {
        match self {
            Segment::Batch { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

/// Structural violation at an entry index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentError {
    /// Index of the offending entry.
    pub at: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed ledger at entry {}: {}", self.at, self.what)
    }
}

impl std::error::Error for SegmentError {}

/// Parse an entry stream into segments, enforcing the grammar above.
/// `base` is the absolute index of `entries[0]` (fragments don't start at
/// zero), used only to report genesis placement. The stream must be
/// complete: end-of-input closes a trailing batch's transaction run, and
/// a segment cut off mid-way (dangling evidence, a view-change set with
/// no new-view) is malformed.
pub fn segment_entries(entries: &[LedgerEntry], base: usize) -> Result<Vec<Segment>, SegmentError> {
    let (segments, consumed) = parse_segments(entries, base, true)?;
    debug_assert_eq!(consumed, entries.len(), "complete mode consumes everything");
    Ok(segments)
}

/// Segment the *complete prefix* of a possibly-truncated entry stream
/// (incremental state transfer: pages arrive in batch-aligned chunks but
/// a hostile or mid-cut server may deliver any prefix).
///
/// Returns the segments that are provably finished plus the number of
/// entries they consume; the unconsumed tail must be buffered until more
/// entries arrive. A batch segment is only finished once the entry
/// *after* its transaction run has arrived (a trailing batch may still
/// gain transactions); view-change and genesis segments are fixed-size
/// and complete as soon as both entries are present. Errors are reserved
/// for malformations that no future entries could repair — a truncated
/// tail is never an error here.
pub fn segment_complete_prefix(
    entries: &[LedgerEntry],
    base: usize,
) -> Result<(Vec<Segment>, usize), SegmentError> {
    parse_segments(entries, base, false)
}

/// The one grammar implementation behind both entry points.
/// `eof_closes` decides what the end of input means: a terminator (a
/// trailing batch's tx run is over, a missing piece is malformed) for
/// complete streams, or "more may arrive" (stop before the unfinished
/// segment) for streaming prefixes.
fn parse_segments(
    entries: &[LedgerEntry],
    base: usize,
    eof_closes: bool,
) -> Result<(Vec<Segment>, usize), SegmentError> {
    let mut segments = Vec::new();
    let mut i = 0usize;
    while i < entries.len() {
        match &entries[i] {
            LedgerEntry::Genesis { .. } => {
                if base + i != 0 {
                    return Err(SegmentError { at: i, what: "genesis not at index 0" });
                }
                segments.push(Segment::Genesis { at: i });
                i += 1;
            }
            LedgerEntry::Evidence { seq: ev_seq, prepares } => {
                // Must be followed by nonces then a pre-prepare referencing them.
                let Some(next) = entries.get(i + 1) else {
                    if eof_closes {
                        return Err(SegmentError { at: i, what: "evidence not followed by nonces" });
                    }
                    return Ok((segments, i)); // nonces not here yet
                };
                let LedgerEntry::Nonces { seq: n_seq, nonces } = next else {
                    return Err(SegmentError { at: i, what: "evidence not followed by nonces" });
                };
                if n_seq != ev_seq {
                    return Err(SegmentError { at: i + 1, what: "nonce seq != evidence seq" });
                }
                let Some(third) = entries.get(i + 2) else {
                    if eof_closes {
                        return Err(SegmentError {
                            at: i,
                            what: "evidence not followed by pre-prepare",
                        });
                    }
                    return Ok((segments, i)); // pre-prepare not here yet
                };
                let LedgerEntry::PrePrepare(pp) = third else {
                    return Err(SegmentError { at: i, what: "evidence not followed by pre-prepare" });
                };
                if pp.core.evidence_seq != *ev_seq {
                    return Err(SegmentError {
                        at: i + 2,
                        what: "pre-prepare evidence_seq mismatch",
                    });
                }
                let expected = pp.core.evidence_bitmap.count();
                if nonces.len() != expected {
                    return Err(SegmentError { at: i + 1, what: "nonce count != bitmap" });
                }
                if expected > 0 && prepares.len() != expected - 1 {
                    return Err(SegmentError { at: i, what: "prepare count != bitmap − 1" });
                }
                let txs = collect_txs(entries, i + 3);
                let end = i + 3 + txs.len();
                if end == entries.len() && !eof_closes {
                    return Ok((segments, i)); // the tx run may not have ended
                }
                segments.push(Segment::Batch {
                    evidence_at: Some(i),
                    nonces_at: Some(i + 1),
                    pp_at: i + 2,
                    tx_at: txs,
                    seq: pp.seq(),
                    view: pp.view(),
                });
                i = end;
            }
            LedgerEntry::Nonces { .. } => {
                return Err(SegmentError { at: i, what: "nonces without preceding evidence" });
            }
            LedgerEntry::PrePrepare(pp) => {
                // A bare pre-prepare: legal only when it carries no evidence
                // (startup, or evidence for a seq before the fragment).
                if pp.core.evidence_bitmap.count() != 0 {
                    return Err(SegmentError {
                        at: i,
                        what: "pre-prepare claims evidence but none precedes",
                    });
                }
                let txs = collect_txs(entries, i + 1);
                let end = i + 1 + txs.len();
                if end == entries.len() && !eof_closes {
                    return Ok((segments, i)); // the tx run may not have ended
                }
                segments.push(Segment::Batch {
                    evidence_at: None,
                    nonces_at: None,
                    pp_at: i,
                    tx_at: txs,
                    seq: pp.seq(),
                    view: pp.view(),
                });
                i = end;
            }
            LedgerEntry::Tx(_) => {
                return Err(SegmentError { at: i, what: "transaction outside a batch" });
            }
            LedgerEntry::ViewChangeSet { view, .. } => {
                let Some(next) = entries.get(i + 1) else {
                    if eof_closes {
                        return Err(SegmentError {
                            at: i,
                            what: "view-change set not followed by new-view",
                        });
                    }
                    return Ok((segments, i)); // new-view not here yet
                };
                let LedgerEntry::NewView(nv) = next else {
                    return Err(SegmentError {
                        at: i,
                        what: "view-change set not followed by new-view",
                    });
                };
                if nv.view != *view {
                    return Err(SegmentError { at: i + 1, what: "new-view view mismatch" });
                }
                segments.push(Segment::ViewChange { set_at: i, nv_at: i + 1, view: *view });
                i += 2;
            }
            LedgerEntry::NewView(_) => {
                return Err(SegmentError { at: i, what: "new-view without view-change set" });
            }
        }
    }
    Ok((segments, i))
}

fn collect_txs(entries: &[LedgerEntry], from: usize) -> Vec<usize> {
    let mut txs = Vec::new();
    let mut j = from;
    while matches!(entries.get(j), Some(LedgerEntry::Tx(_))) {
        txs.push(j);
        j += 1;
    }
    txs
}

/// Check that batch sequence numbers advance by one within each view run
/// (a fragment may begin mid-stream, so only adjacency is checked).
pub fn check_seq_progression(segments: &[Segment]) -> Result<(), SegmentError> {
    let mut prev: Option<(View, SeqNum)> = None;
    for seg in segments {
        if let Segment::Batch { seq, view, pp_at, .. } = seg {
            if let Some((pv, ps)) = prev {
                let monotone = if *view == pv {
                    seq.0 == ps.0 + 1
                } else {
                    // A new view may re-propose prepared batches: it can step
                    // back by up to the pipeline depth, but never skip ahead
                    // by more than one.
                    *view > pv && seq.0 <= ps.0 + 1
                };
                if !monotone {
                    return Err(SegmentError { at: *pp_at, what: "sequence numbers not contiguous" });
                }
            }
            prev = Some((*view, *seq));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_ccf_crypto::KeyPair;
    use ia_ccf_types::config::testutil::test_config;
    use ia_ccf_types::messages::testutil::test_pp;
    use ia_ccf_types::{
        ClientId, LedgerIdx, Nonce, PrePrepare, ProcId, ReplicaBitmap, Request, RequestAction,
        SignedRequest, TxLedgerEntry, TxResult,
    };

    fn pp_no_evidence(view: u64, seq: u64) -> PrePrepare {
        let kp = KeyPair::from_label("p");
        let mut pp = test_pp(view, seq, &kp);
        pp.core.evidence_bitmap = ReplicaBitmap::empty();
        pp
    }

    fn pp_with_evidence(view: u64, seq: u64, ev_seq: u64, signers: usize) -> PrePrepare {
        let kp = KeyPair::from_label("p");
        let mut pp = test_pp(view, seq, &kp);
        pp.core.evidence_seq = SeqNum(ev_seq);
        pp.core.evidence_bitmap = ReplicaBitmap::from_ranks(0..signers);
        pp
    }

    fn tx_entry(i: u64) -> LedgerEntry {
        let kp = KeyPair::from_label("c");
        LedgerEntry::Tx(TxLedgerEntry {
            request: SignedRequest::sign(
                Request {
                    action: RequestAction::App { proc: ProcId(1), args: vec![] },
                    client: ClientId(1),
                    gt_hash: ia_ccf_crypto::hash_bytes(b"gt"),
                    min_index: LedgerIdx(0),
                    req_id: i,
                },
                &kp,
            ),
            index: LedgerIdx(i),
            result: TxResult {
                ok: true,
                output: vec![],
                write_set_digest: ia_ccf_crypto::Digest::zero(),
            },
        })
    }

    fn genesis() -> LedgerEntry {
        let (config, _, _) = test_config(4);
        LedgerEntry::Genesis { config }
    }

    fn evidence(seq: u64, signers: usize) -> [LedgerEntry; 2] {
        // `signers − 1` prepares and `signers` nonces, matching the bitmap.
        let kp = KeyPair::from_label("b");
        let prepares = (1..signers)
            .map(|r| ia_ccf_types::Prepare {
                view: View(0),
                seq: SeqNum(seq),
                replica: ia_ccf_types::ReplicaId(r as u32),
                nonce_commit: Nonce([r as u8; 16]).commitment(),
                pp_digest: ia_ccf_crypto::hash_bytes(b"pp"),
                sig: kp.sign(b"x"),
            })
            .collect();
        let nonces = (0..signers).map(|r| Nonce([r as u8; 16])).collect();
        [
            LedgerEntry::Evidence { seq: SeqNum(seq), prepares },
            LedgerEntry::Nonces { seq: SeqNum(seq), nonces },
        ]
    }

    #[test]
    fn well_formed_stream_segments() {
        let [ev, no] = evidence(1, 3);
        let entries = vec![
            genesis(),
            LedgerEntry::PrePrepare(pp_no_evidence(0, 1)),
            tx_entry(2),
            tx_entry(3),
            ev,
            no,
            LedgerEntry::PrePrepare(pp_with_evidence(0, 2, 1, 3)),
            tx_entry(7),
        ];
        let segs = segment_entries(&entries, 0).unwrap();
        assert_eq!(segs.len(), 3);
        assert!(matches!(segs[0], Segment::Genesis { at: 0 }));
        assert!(
            matches!(&segs[1], Segment::Batch { evidence_at: None, tx_at, seq, .. }
                if tx_at.len() == 2 && *seq == SeqNum(1))
        );
        assert!(
            matches!(&segs[2], Segment::Batch { evidence_at: Some(4), nonces_at: Some(5), tx_at, .. }
                if tx_at.len() == 1)
        );
        check_seq_progression(&segs).unwrap();
    }

    #[test]
    fn genesis_mid_stream_rejected() {
        let entries = vec![LedgerEntry::PrePrepare(pp_no_evidence(0, 1)), genesis()];
        let err = segment_entries(&entries, 0).unwrap_err();
        assert_eq!(err.what, "genesis not at index 0");
    }

    #[test]
    fn orphan_tx_rejected() {
        let entries = vec![genesis(), tx_entry(1)];
        let err = segment_entries(&entries, 0).unwrap_err();
        assert_eq!(err.what, "transaction outside a batch");
    }

    #[test]
    fn orphan_nonces_rejected() {
        let entries = vec![LedgerEntry::Nonces { seq: SeqNum(1), nonces: vec![] }];
        assert!(segment_entries(&entries, 5).is_err());
    }

    #[test]
    fn evidence_without_pp_rejected() {
        let [ev, no] = evidence(1, 3);
        let entries = vec![ev, no, tx_entry(2)];
        let err = segment_entries(&entries, 3).unwrap_err();
        assert_eq!(err.what, "evidence not followed by pre-prepare");
    }

    #[test]
    fn evidence_seq_mismatch_rejected() {
        let [ev, no] = evidence(1, 3);
        let entries = vec![ev, no, LedgerEntry::PrePrepare(pp_with_evidence(0, 2, 9, 3))];
        let err = segment_entries(&entries, 3).unwrap_err();
        assert_eq!(err.what, "pre-prepare evidence_seq mismatch");
    }

    #[test]
    fn nonce_count_mismatch_rejected() {
        let [ev, _] = evidence(1, 3);
        let wrong_nonces = LedgerEntry::Nonces { seq: SeqNum(1), nonces: vec![Nonce([1; 16])] };
        let entries = vec![ev, wrong_nonces, LedgerEntry::PrePrepare(pp_with_evidence(0, 2, 1, 3))];
        let err = segment_entries(&entries, 3).unwrap_err();
        assert_eq!(err.what, "nonce count != bitmap");
    }

    #[test]
    fn pp_claiming_missing_evidence_rejected() {
        let entries = vec![LedgerEntry::PrePrepare(pp_with_evidence(0, 2, 1, 3))];
        let err = segment_entries(&entries, 3).unwrap_err();
        assert_eq!(err.what, "pre-prepare claims evidence but none precedes");
    }

    #[test]
    fn new_view_without_set_rejected() {
        let entries = vec![LedgerEntry::NewView(ia_ccf_types::NewViewMsg {
            view: View(1),
            root_m: ia_ccf_crypto::hash_bytes(b"m"),
            vc_bitmap: ReplicaBitmap::empty(),
            vc_entry_hash: ia_ccf_crypto::hash_bytes(b"vc"),
            sig: ia_ccf_types::Signature::zero(),
        })];
        let err = segment_entries(&entries, 1).unwrap_err();
        assert_eq!(err.what, "new-view without view-change set");
    }

    #[test]
    fn seq_progression_detects_gap() {
        let segs = vec![
            Segment::Batch {
                evidence_at: None,
                nonces_at: None,
                pp_at: 0,
                tx_at: vec![],
                seq: SeqNum(1),
                view: View(0),
            },
            Segment::Batch {
                evidence_at: None,
                nonces_at: None,
                pp_at: 1,
                tx_at: vec![],
                seq: SeqNum(3),
                view: View(0),
            },
        ];
        assert!(check_seq_progression(&segs).is_err());
    }

    #[test]
    fn complete_prefix_withholds_unfinished_tail() {
        let [ev, no] = evidence(1, 3);
        let pp2 = LedgerEntry::PrePrepare(pp_with_evidence(0, 2, 1, 3));
        let stream = vec![
            LedgerEntry::PrePrepare(pp_no_evidence(0, 1)),
            tx_entry(1),
            tx_entry(2),
            ev,
            no,
            pp2,
            tx_entry(3),
        ];
        // Cut after every prefix length: the parser must never flush a
        // segment that could still grow, and never call a truncation
        // malformed.
        for cut in 0..=stream.len() {
            let (segs, consumed) = segment_complete_prefix(&stream[..cut], 1).unwrap();
            assert!(consumed <= cut);
            // Batch 1 is only complete once the evidence entry (cut >= 4)
            // proves its tx run ended.
            if cut <= 3 {
                assert!(segs.is_empty(), "cut {cut}: trailing batch must be withheld");
                assert_eq!(consumed, 0);
            } else {
                assert_eq!(segs.len(), 1, "cut {cut}: batch 1 complete");
                assert_eq!(segs[0].seq(), Some(SeqNum(1)));
                assert_eq!(consumed, 3);
            }
            // The full stream still ends in a withheld batch (its tx run
            // is unterminated), so batch 2 never flushes here.
        }
        // Terminated by a following view-change set: batch 2 flushes and
        // the fixed-size view-change segment flushes immediately too.
        let mut full = stream.clone();
        full.push(LedgerEntry::ViewChangeSet { view: View(1), view_changes: vec![] });
        full.push(LedgerEntry::NewView(ia_ccf_types::NewViewMsg {
            view: View(1),
            root_m: ia_ccf_crypto::hash_bytes(b"m"),
            vc_bitmap: ReplicaBitmap::empty(),
            vc_entry_hash: ia_ccf_crypto::hash_bytes(b"vc"),
            sig: ia_ccf_types::Signature::zero(),
        }));
        let (segs, consumed) = segment_complete_prefix(&full, 1).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(consumed, full.len());
        assert!(matches!(segs[2], Segment::ViewChange { view: View(1), .. }));
        // The complete-prefix segmentation agrees with the one-shot
        // segmenter on the consumed prefix.
        assert_eq!(segs, segment_entries(&full[..consumed], 1).unwrap());
    }

    #[test]
    fn complete_prefix_rejects_unrepairable_malformations() {
        let [ev, _] = evidence(1, 3);
        // Evidence followed by a transaction can never become well-formed.
        let entries = vec![ev, tx_entry(1)];
        let err = segment_complete_prefix(&entries, 1).unwrap_err();
        assert_eq!(err.what, "evidence not followed by nonces");
        // A bare leading transaction is an orphan regardless of what
        // arrives later.
        let entries = vec![tx_entry(1)];
        let err = segment_complete_prefix(&entries, 1).unwrap_err();
        assert_eq!(err.what, "transaction outside a batch");
        // Truncations of these same streams that end *before* the
        // contradiction are incomplete, not malformed.
        let [ev, _] = evidence(1, 3);
        let (segs, consumed) = segment_complete_prefix(&[ev], 1).unwrap();
        assert!(segs.is_empty());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn seq_progression_allows_view_change_stepback() {
        // After a view change, the new primary may re-propose the last
        // prepared batches: seq steps back in a higher view.
        let segs = vec![
            Segment::Batch {
                evidence_at: None,
                nonces_at: None,
                pp_at: 0,
                tx_at: vec![],
                seq: SeqNum(5),
                view: View(0),
            },
            Segment::Batch {
                evidence_at: None,
                nonces_at: None,
                pp_at: 1,
                tx_at: vec![],
                seq: SeqNum(4),
                view: View(1),
            },
        ];
        check_seq_progression(&segs).unwrap();
    }
}
