//! The append-only ledger (§2 ❷, Fig. 3).
//!
//! The ledger stores, per batch: the commitment evidence for the batch `P`
//! earlier (`P_{s−P}`, `K_{s−P}`), the signed pre-prepare, and the
//! `⟨t, i, o⟩` transaction entries — plus view-change/new-view entries and
//! the genesis transaction. Non-transaction entries are leaves of the
//! Merkle tree `M`, whose root every signed pre-prepare carries, committing
//! each replica to the entire history.
//!
//! Four facilities live here:
//!
//! * [`Ledger`] — the replica-side structure: append, rollback
//!   ([`Ledger::truncate_to`], Lemma 1), roots, lookups;
//! * [`segment`] — the shared structural grammar ("well-formedness" in
//!   Appx. B terms) used by replicas validating fetched fragments and by
//!   the auditor;
//! * [`durable`] — the disk-backed segment files behind a durable
//!   replica: chunk-framed appends, batched fsync, torn-tail repair;
//! * [`subledger`] — extraction of the governance sub-ledger (§5.2).

pub mod durable;
pub mod segment;
pub mod store;
pub mod subledger;

pub use durable::{DurableLog, ARCHIVE_DIR, CHECKPOINT_FILE, MANIFEST_FILE};
pub use segment::{segment_entries, Segment, SegmentError};
pub use store::{AttachError, Ledger};
pub use subledger::governance_tx_indices;
