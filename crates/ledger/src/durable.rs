//! Disk-backed ledger segments.
//!
//! The paper assumes replicas keep the ledger on stable storage so a
//! crashed replica restarts from its local prefix and re-pages only the
//! suffix (§3.4). This module is that storage layer: a directory of
//! append-only segment files, written chunk-at-a-time, fsynced in batches
//! on the [`fsync_interval_batches`] knob, and repaired at open time by
//! truncating any torn trailing chunk.
//!
//! # Chunk framing and the torn-tail contract
//!
//! Every append call becomes one *chunk*:
//!
//! ```text
//! chunk := payload-len:u32  entry-count:u32  (entry-len:u32 entry-bytes)*
//! ```
//!
//! The live replica appends at batch granularity (the evidence pair and
//! the `[PrePrepare, Tx...]` run are each one `append_batch` call, and
//! view-change entries are single appends), so a chunk never splits a
//! batch. A crash mid-write leaves a *prefix* of a chunk on disk; the
//! open-time scan detects it (missing payload bytes, or an entry that no
//! longer decodes) and truncates the file back to the chunk boundary —
//! a torn chunk is therefore **never parsed into state**. The decoded
//! prefix is handed to the caller, which applies the structural
//! (grammar-level) repair on top.
//!
//! Chunk framing also means every historical truncation point (the view
//! change path only ever drops whole entries that were appended
//! individually) lands on a chunk boundary; for the general case
//! [`DurableLog::truncate_entries`] truncates to the chunk *floor* and
//! reports how many entries survived so the caller can re-append the
//! remainder.
//!
//! # Suffix logs and the seeded layout
//!
//! A checkpoint-seeded replica holds a *suffix* ledger whose first entry
//! sits at an absolute index `base > 0`. The on-disk form records that
//! base in a tiny `manifest` file (magic + `base:u64`, written atomically
//! via tmp + rename + directory fsync): segment files only ever store
//! relative positions, so the manifest is the single source of truth for
//! where the run begins. The seeded directory layout is
//!
//! ```text
//! data_dir/
//!   checkpoint.cp        verified KvCheckpoint + frontier + seed batch
//!   manifest             base index of the segment run (absent ⇒ 0)
//!   ledger-000000.seg …  suffix segments, chunk-framed as always
//!   archive/upto-NNN/    retired pre-crash prefix segments
//! ```
//!
//! Retirement ([`DurableLog::retire_to_archive`]) renames the stale
//! prefix segments highest-index-first, so a crash mid-retirement leaves
//! a shorter but valid full-history prefix, never a gapped one; the
//! manifest write in [`DurableLog::create_suffix`] is the commit point
//! after which the directory reads as a suffix log.
//!
//! [`fsync_interval_batches`]: DurableLog::open

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use ia_ccf_types::{LedgerEntry, Wire};

/// Manifest file recording the base entry index of the segment run.
pub const MANIFEST_FILE: &str = "manifest";
/// Seed checkpoint file a fast-path recoveree persists next to its
/// suffix segments (written by the core crate; named here because it is
/// part of the durable directory layout).
pub const CHECKPOINT_FILE: &str = "checkpoint.cp";
/// Directory retired pre-crash prefix segments are archived into.
pub const ARCHIVE_DIR: &str = "archive";

const MANIFEST_MAGIC: &[u8; 16] = b"IACCF-SEG-BASE-1";

/// Where one entry's encoded bytes live on disk.
#[derive(Debug, Clone, Copy)]
struct EntryLoc {
    file: u32,
    offset: u64,
    len: u32,
}

/// One chunk's extent: which file, where it ends there, and through which
/// entry it reaches — what truncation needs to find the chunk floor.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    file: u32,
    end: u64,
    entry_end: u64,
}

/// An append-only, chunk-framed, crash-repairing ledger store.
#[derive(Debug)]
pub struct DurableLog {
    dir: PathBuf,
    files: Vec<File>,
    /// Byte length of each file (the tail file's may exceed `synced`).
    file_lens: Vec<u64>,
    entries: Vec<EntryLoc>,
    chunks: Vec<ChunkMeta>,
    /// Absolute ledger index of the first entry this segment run holds.
    base: u64,
    /// Total bytes in completed (non-tail) files — all durable, since a
    /// roll fsyncs the old tail before moving on.
    completed_bytes: u64,
    /// Bytes of the tail file known to have reached stable storage.
    synced: u64,
    /// Batches (PrePrepare-bearing chunks) appended since the last fsync.
    unsynced_batches: u64,
    fsync_interval_batches: u64,
    roll_bytes: u64,
    /// Test hook: fail the next write-path operation with an injected
    /// I/O error.
    fail_next_write: bool,
}

fn seg_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("ledger-{idx:06}.seg"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn read_manifest(dir: &Path) -> io::Result<u64> {
    match fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => {
            if bytes.len() == 24 && &bytes[..16] == MANIFEST_MAGIC {
                Ok(u64::from_le_bytes(bytes[16..24].try_into().unwrap()))
            } else {
                Err(io::Error::other("corrupt segment manifest"))
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

fn write_manifest(dir: &Path, base: u64) -> io::Result<()> {
    let tmp = dir.join("manifest.tmp");
    let mut bytes = Vec::with_capacity(24);
    bytes.extend_from_slice(MANIFEST_MAGIC);
    bytes.extend_from_slice(&base.to_le_bytes());
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir)
}

impl DurableLog {
    /// Default segment roll size; page serving and repair never need to
    /// touch more than one file's tail.
    pub const DEFAULT_ROLL_BYTES: u64 = 8 << 20;

    /// Open (or create) the log under `dir`, repair any torn tail, and
    /// return the log together with the decoded entry prefix that
    /// survived. A fresh directory yields an empty log.
    pub fn open(
        dir: &Path,
        fsync_interval_batches: u64,
    ) -> io::Result<(Self, Vec<LedgerEntry>)> {
        Self::open_with_roll(dir, fsync_interval_batches, Self::DEFAULT_ROLL_BYTES)
    }

    /// [`DurableLog::open`] with an explicit roll size — tests use a tiny
    /// one to exercise multi-file logs without megabytes of entries.
    pub fn open_with_roll(
        dir: &Path,
        fsync_interval_batches: u64,
        roll_bytes: u64,
    ) -> io::Result<(Self, Vec<LedgerEntry>)> {
        fs::create_dir_all(dir)?;
        let base = read_manifest(dir)?;
        let mut log = DurableLog {
            dir: dir.to_path_buf(),
            files: Vec::new(),
            file_lens: Vec::new(),
            entries: Vec::new(),
            chunks: Vec::new(),
            base,
            completed_bytes: 0,
            synced: 0,
            unsynced_batches: 0,
            fsync_interval_batches: fsync_interval_batches.max(1),
            roll_bytes: roll_bytes.max(1),
            fail_next_write: false,
        };
        let mut decoded = Vec::new();
        let mut idx = 0;
        loop {
            let path = seg_path(dir, idx);
            if !path.exists() {
                break;
            }
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let good = log.scan_file(idx as u32, &bytes, &mut decoded);
            if good < bytes.len() as u64 {
                // Torn (or corrupt) tail: truncate back to the last chunk
                // boundary so the partial chunk can never be re-read, and
                // drop any later files — they were written after the torn
                // point and nothing before them survived.
                file.set_len(good)?;
                file.sync_all()?;
                log.files.push(file);
                log.file_lens.push(good);
                let mut later = idx + 1;
                while seg_path(dir, later).exists() {
                    fs::remove_file(seg_path(dir, later))?;
                    later += 1;
                }
                sync_dir(dir)?;
                break;
            }
            log.files.push(file);
            log.file_lens.push(good);
            idx += 1;
        }
        if log.files.is_empty() {
            log.push_new_file()?;
        }
        log.completed_bytes =
            log.file_lens[..log.file_lens.len() - 1].iter().sum();
        log.synced = *log.file_lens.last().expect("at least one file");
        Ok((log, decoded))
    }

    /// Create a fresh *suffix* log under `dir` whose first entry will sit
    /// at absolute ledger index `base`: writes the manifest (the commit
    /// point of the seeded layout) and opens the empty run. Fails if the
    /// directory still holds segment files — the caller retires those via
    /// [`DurableLog::retire_to_archive`] first.
    pub fn create_suffix(
        dir: &Path,
        fsync_interval_batches: u64,
        roll_bytes: u64,
        base: u64,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        // Tolerate *empty* leftovers: a probing `open` on a
        // mid-transition directory (retired but no manifest yet) creates
        // an empty seg-0 before the caller detects the seeded layout.
        // Anything with bytes in it is real state and must be retired
        // first.
        let mut n = 0;
        while seg_path(dir, n).exists() {
            if fs::metadata(seg_path(dir, n))?.len() > 0 {
                return Err(io::Error::other(
                    "suffix log directory still holds segment files",
                ));
            }
            n += 1;
        }
        for idx in 0..n {
            fs::remove_file(seg_path(dir, idx))?;
        }
        write_manifest(dir, base)?;
        let (log, existing) = Self::open_with_roll(dir, fsync_interval_batches, roll_bytes)?;
        debug_assert!(existing.is_empty());
        Ok(log)
    }

    /// Retire every segment file (and any stale manifest) under `dir`
    /// into `archive/upto-<base>/`, fsyncing both directories. Renames
    /// run highest-index-first so a crash mid-retirement leaves a shorter
    /// but valid full-history prefix, never a gapped run.
    pub fn retire_to_archive(dir: &Path, upto_base: u64) -> io::Result<()> {
        let mut n = 0;
        while seg_path(dir, n).exists() {
            n += 1;
        }
        let stale_manifest = dir.join(MANIFEST_FILE);
        if n == 0 && !stale_manifest.exists() {
            return Ok(());
        }
        let archive = dir.join(ARCHIVE_DIR).join(format!("upto-{upto_base:012}"));
        fs::create_dir_all(&archive)?;
        for idx in (0..n).rev() {
            fs::rename(seg_path(dir, idx), archive.join(format!("ledger-{idx:06}.seg")))?;
        }
        if stale_manifest.exists() {
            fs::rename(&stale_manifest, archive.join(MANIFEST_FILE))?;
        }
        File::open(&archive)?.sync_all()?;
        sync_dir(dir)
    }

    /// Whether `dir` already holds durable state (segment files, a
    /// manifest, or a seed checkpoint) from a previous replica instance.
    pub fn dir_is_occupied(dir: &Path) -> bool {
        seg_path(dir, 0).exists()
            || dir.join(MANIFEST_FILE).exists()
            || dir.join(CHECKPOINT_FILE).exists()
    }

    /// Remove all durable state under `dir` (segments, manifest, seed
    /// checkpoint) so a new replica can claim it. Archived generations
    /// under `archive/` are kept — they are inert history, not state the
    /// next instance would ever read.
    pub fn wipe_dir(dir: &Path) -> io::Result<()> {
        if !dir.exists() {
            return Ok(());
        }
        let mut idx = 0;
        loop {
            let path = seg_path(dir, idx);
            if !path.exists() {
                break;
            }
            fs::remove_file(path)?;
            idx += 1;
        }
        for name in [MANIFEST_FILE, CHECKPOINT_FILE] {
            let path = dir.join(name);
            if path.exists() {
                fs::remove_file(path)?;
            }
        }
        sync_dir(dir)
    }

    /// Parse one file's bytes, recording entry/chunk locations and
    /// decoding entries into `decoded`. Returns the byte length of the
    /// valid chunk prefix.
    fn scan_file(&mut self, file: u32, bytes: &[u8], decoded: &mut Vec<LedgerEntry>) -> u64 {
        let mut pos = 0usize;
        loop {
            let chunk_start = pos;
            let Some(header) = bytes.get(pos..pos + 8) else { return chunk_start as u64 };
            let payload_len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            let entry_count = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
            pos += 8;
            let Some(payload) = bytes.get(pos..pos + payload_len) else {
                return chunk_start as u64;
            };
            // Parse the payload tentatively: nothing is committed to the
            // log's state unless the whole chunk is well formed.
            let mut locs = Vec::with_capacity(entry_count);
            let mut parsed = Vec::with_capacity(entry_count);
            let mut p = 0usize;
            for _ in 0..entry_count {
                let Some(lb) = payload.get(p..p + 4) else { return chunk_start as u64 };
                let elen = u32::from_le_bytes(lb.try_into().unwrap()) as usize;
                p += 4;
                let Some(ebytes) = payload.get(p..p + elen) else { return chunk_start as u64 };
                let Ok(entry) = LedgerEntry::from_bytes(ebytes) else {
                    return chunk_start as u64;
                };
                locs.push(EntryLoc {
                    file,
                    offset: (pos + p) as u64,
                    len: elen as u32,
                });
                parsed.push(entry);
                p += elen;
            }
            if p != payload_len {
                return chunk_start as u64;
            }
            pos += payload_len;
            self.entries.extend(locs);
            decoded.extend(parsed);
            self.chunks.push(ChunkMeta {
                file,
                end: pos as u64,
                entry_end: self.entries.len() as u64,
            });
        }
    }

    fn push_new_file(&mut self) -> io::Result<()> {
        let idx = self.files.len();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(seg_path(&self.dir, idx))?;
        sync_dir(&self.dir)?;
        self.completed_bytes += self.file_lens.last().copied().unwrap_or(0);
        self.files.push(file);
        self.file_lens.push(0);
        self.synced = 0;
        Ok(())
    }

    /// Number of entries the log holds (relative to [`DurableLog::base`]).
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Absolute ledger index of the first entry this segment run
    /// represents: `0` for a full-history log, the seed checkpoint's
    /// ledger length for a suffix log.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Global byte offset (across *all* segment files) known to have
    /// reached stable storage. A crash may lose anything in
    /// `[synced_len, written_len)` — which always lies inside the tail
    /// file, since a roll fsyncs the outgoing file; the crash harness
    /// truncates into that window to emulate losing the OS page cache,
    /// using [`DurableLog::completed_len`] to map the global offset onto
    /// the tail file.
    pub fn synced_len(&self) -> u64 {
        self.completed_bytes + self.synced
    }

    /// Global byte offset written (not necessarily synced) across all
    /// segment files.
    pub fn written_len(&self) -> u64 {
        self.completed_bytes + *self.file_lens.last().expect("at least one file")
    }

    /// Total bytes in completed (non-tail) segment files — the global
    /// offset at which the tail file begins.
    pub fn completed_len(&self) -> u64 {
        self.completed_bytes
    }

    /// Path of the tail segment file (the only file with unsynced bytes).
    pub fn tail_file_path(&self) -> PathBuf {
        seg_path(&self.dir, self.files.len() - 1)
    }

    /// Test hook: make the next write-path call (`append_chunk` or
    /// `truncate_entries`) fail with an injected I/O error, so harnesses
    /// can exercise the graceful durability-detach path without a real
    /// disk fault.
    #[doc(hidden)]
    pub fn inject_write_error(&mut self) {
        self.fail_next_write = true;
    }

    fn take_injected_error(&mut self) -> io::Result<()> {
        if self.fail_next_write {
            self.fail_next_write = false;
            return Err(io::Error::other("injected write failure"));
        }
        Ok(())
    }

    /// Append one chunk of entries. `counts_as_batch` marks chunks that
    /// carry a pre-prepare — the unit [`fsync_interval_batches`] counts.
    /// Rolls to a new file when the tail exceeds the roll size, and
    /// fsyncs when the batch interval is reached (and always on roll, so
    /// completed files are durable before the log moves on).
    ///
    /// [`fsync_interval_batches`]: DurableLog::open
    pub fn append_chunk(
        &mut self,
        entries: &[LedgerEntry],
        counts_as_batch: bool,
    ) -> io::Result<()> {
        self.take_injected_error()?;
        if *self.file_lens.last().unwrap() >= self.roll_bytes {
            self.fsync_tail()?;
            self.push_new_file()?;
        }
        let file_idx = (self.files.len() - 1) as u32;
        let base = *self.file_lens.last().unwrap();
        let mut payload = Vec::new();
        let mut locs = Vec::with_capacity(entries.len());
        for entry in entries {
            let ebytes = entry.to_bytes();
            locs.push(EntryLoc {
                file: file_idx,
                // + 8 for the chunk header that precedes the payload.
                offset: base + 8 + (payload.len() + 4) as u64,
                len: ebytes.len() as u32,
            });
            payload.extend_from_slice(&(ebytes.len() as u32).to_le_bytes());
            payload.extend_from_slice(&ebytes);
        }
        let mut chunk = Vec::with_capacity(8 + payload.len());
        chunk.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        chunk.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        chunk.extend_from_slice(&payload);
        let file = self.files.last_mut().unwrap();
        file.seek(SeekFrom::Start(base))?;
        file.write_all(&chunk)?;
        self.entries.extend(locs);
        *self.file_lens.last_mut().unwrap() = base + chunk.len() as u64;
        self.chunks.push(ChunkMeta {
            file: file_idx,
            end: base + chunk.len() as u64,
            entry_end: self.entries.len() as u64,
        });
        if counts_as_batch {
            self.unsynced_batches += 1;
            if self.unsynced_batches >= self.fsync_interval_batches {
                self.fsync_tail()?;
            }
        }
        Ok(())
    }

    /// Force everything written so far onto stable storage.
    pub fn fsync_tail(&mut self) -> io::Result<()> {
        self.files.last().unwrap().sync_all()?;
        self.synced = *self.file_lens.last().unwrap();
        self.unsynced_batches = 0;
        Ok(())
    }

    /// Truncate the log so at most `keep` entries remain (`keep` is
    /// relative to the log's base, like [`DurableLog::entry_count`]).
    /// Truncation happens at chunk granularity: the log is cut at the
    /// last chunk boundary not exceeding `keep` and the number of
    /// surviving entries (the chunk floor, ≤ `keep`) is returned — the
    /// caller re-appends the gap from its in-memory copy. In practice
    /// every live truncation (the view-change rollback drops
    /// individually-appended entries) already lands on a boundary.
    pub fn truncate_entries(&mut self, keep: u64) -> io::Result<u64> {
        self.take_injected_error()?;
        while self.chunks.last().is_some_and(|c| c.entry_end > keep) {
            self.chunks.pop();
        }
        let floor = self.chunks.last().map_or(0, |c| c.entry_end);
        self.entries.truncate(floor as usize);
        let (keep_file, keep_len) = match self.chunks.last() {
            Some(c) => (c.file as usize, c.end),
            None => (0, 0),
        };
        while self.files.len() > keep_file + 1 {
            self.files.pop();
            self.file_lens.pop();
            fs::remove_file(seg_path(&self.dir, self.files.len()))?;
        }
        let file = self.files.last_mut().unwrap();
        file.set_len(keep_len)?;
        file.sync_all()?;
        *self.file_lens.last_mut().unwrap() = keep_len;
        self.completed_bytes =
            self.file_lens[..self.file_lens.len() - 1].iter().sum();
        self.synced = keep_len;
        self.unsynced_batches = 0;
        sync_dir(&self.dir)?;
        Ok(floor)
    }

    /// Read the encoded bytes of entries `[from, to_exclusive)` (indices
    /// relative to the log's base) straight from the segment files — the
    /// page-serving read path. Out-of-range indices clamp to what the log
    /// holds.
    pub fn read_encoded_range(&self, from: u64, to_exclusive: u64) -> io::Result<Vec<Vec<u8>>> {
        let to = to_exclusive.min(self.entries.len() as u64);
        let mut out = Vec::with_capacity(to.saturating_sub(from) as usize);
        for loc in self.entries.iter().skip(from as usize).take(to.saturating_sub(from) as usize)
        {
            let mut buf = vec![0u8; loc.len as usize];
            self.files[loc.file as usize].read_exact_at(&mut buf, loc.offset)?;
            out.push(buf);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_ccf_types::{Nonce, SeqNum};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Minimal std-only tempdir with drop cleanup.
    struct TestDir(PathBuf);
    impl TestDir {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "iaccf-durable-{tag}-{}-{n}",
                std::process::id()
            ));
            fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }
    }
    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn nonce_entry(s: u64) -> LedgerEntry {
        LedgerEntry::Nonces { seq: SeqNum(s), nonces: vec![Nonce([s as u8; 16])] }
    }

    #[test]
    fn append_reopen_roundtrip() {
        let td = TestDir::new("roundtrip");
        let all: Vec<LedgerEntry> = (0..20).map(nonce_entry).collect();
        {
            let (mut log, prefix) = DurableLog::open(&td.0, 1).unwrap();
            assert!(prefix.is_empty());
            for chunk in all.chunks(3) {
                log.append_chunk(chunk, true).unwrap();
            }
            assert_eq!(log.entry_count(), 20);
        }
        let (log, prefix) = DurableLog::open(&td.0, 1).unwrap();
        assert_eq!(prefix, all);
        assert_eq!(log.entry_count(), 20);
        assert_eq!(log.base(), 0, "manifest-less directory reads as base 0");
        // The disk read path serves the same bytes the entries encode to.
        let encoded = log.read_encoded_range(5, 9).unwrap();
        for (bytes, entry) in encoded.iter().zip(&all[5..9]) {
            assert_eq!(&LedgerEntry::from_bytes(bytes).unwrap(), entry);
        }
    }

    #[test]
    fn rolls_across_files_and_reopens() {
        let td = TestDir::new("roll");
        let all: Vec<LedgerEntry> = (0..64).map(nonce_entry).collect();
        {
            let (mut log, _) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
            for e in &all {
                log.append_chunk(std::slice::from_ref(e), true).unwrap();
            }
            assert!(log.files.len() > 1, "tiny roll size must produce several files");
        }
        let (log, prefix) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        assert_eq!(prefix, all);
        let encoded = log.read_encoded_range(0, 64).unwrap();
        assert_eq!(encoded.len(), 64);
        for (bytes, entry) in encoded.iter().zip(&all) {
            assert_eq!(&LedgerEntry::from_bytes(bytes).unwrap(), entry);
        }
    }

    /// The torn-tail contract, byte by byte: truncating the tail file at
    /// *every* possible length must reopen to a chunk-boundary prefix —
    /// never a partially-parsed chunk, never a lost complete chunk.
    #[test]
    fn torn_tail_byte_sweep() {
        let td = TestDir::new("sweep");
        let all: Vec<LedgerEntry> = (0..12).map(nonce_entry).collect();
        let (chunk_floors, full_len) = {
            let (mut log, _) = DurableLog::open(&td.0, 1).unwrap();
            for chunk in all.chunks(2) {
                log.append_chunk(chunk, true).unwrap();
            }
            let floors: Vec<(u64, u64)> =
                log.chunks.iter().map(|c| (c.end, c.entry_end)).collect();
            (floors, log.written_len())
        };
        let path = seg_path(&td.0, 0);
        let pristine = fs::read(&path).unwrap();
        assert_eq!(pristine.len() as u64, full_len);
        for cut in 0..=pristine.len() {
            fs::write(&path, &pristine[..cut]).unwrap();
            let (log, prefix) = DurableLog::open(&td.0, 1).unwrap();
            // Expected survivors: every chunk wholly inside the cut.
            let want = chunk_floors
                .iter()
                .take_while(|(end, _)| *end <= cut as u64)
                .last()
                .map_or(0, |(_, entries)| *entries);
            assert_eq!(log.entry_count(), want, "cut at byte {cut}");
            assert_eq!(prefix, all[..want as usize], "cut at byte {cut}");
            // Repair must have truncated the file to the floor.
            assert_eq!(
                fs::metadata(&path).unwrap().len(),
                chunk_floors
                    .iter()
                    .take_while(|(end, _)| *end <= cut as u64)
                    .last()
                    .map_or(0, |(end, _)| *end),
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn truncate_entries_cuts_at_chunk_floor() {
        let td = TestDir::new("trunc");
        let all: Vec<LedgerEntry> = (0..10).map(nonce_entry).collect();
        let (mut log, _) = DurableLog::open(&td.0, 1).unwrap();
        for chunk in all.chunks(3) {
            log.append_chunk(chunk, true).unwrap();
        }
        // Entry 7 sits mid-chunk (chunks are 0..3, 3..6, 6..9, 9..10):
        // the floor is 6 and the caller re-appends 6..7.
        let floor = log.truncate_entries(7).unwrap();
        assert_eq!(floor, 6);
        log.append_chunk(&all[6..7], true).unwrap();
        assert_eq!(log.entry_count(), 7);
        drop(log);
        let (_, prefix) = DurableLog::open(&td.0, 1).unwrap();
        assert_eq!(prefix, all[..7]);
    }

    #[test]
    fn truncate_entries_drops_later_files() {
        let td = TestDir::new("trunc-files");
        let all: Vec<LedgerEntry> = (0..40).map(nonce_entry).collect();
        let (mut log, _) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        for e in &all {
            log.append_chunk(std::slice::from_ref(e), true).unwrap();
        }
        let n_files = log.files.len();
        assert!(n_files > 2);
        let floor = log.truncate_entries(3).unwrap();
        assert_eq!(floor, 3, "single-entry chunks truncate exactly");
        assert!(!seg_path(&td.0, n_files - 1).exists(), "later files removed");
        drop(log);
        let (log, prefix) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        assert_eq!(prefix, all[..3]);
        // And the log keeps appending fine after the cut.
        drop(log);
        let (mut log, _) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        log.append_chunk(&all[3..4], true).unwrap();
        drop(log);
        let (_, prefix) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        assert_eq!(prefix, all[..4]);
    }

    #[test]
    fn fsync_interval_tracks_synced_watermark() {
        let td = TestDir::new("fsync");
        let (mut log, _) = DurableLog::open(&td.0, 4).unwrap();
        for i in 0..3 {
            log.append_chunk(&[nonce_entry(i)], true).unwrap();
        }
        // Three of four batches in: written has advanced, synced has not.
        assert_eq!(log.synced_len(), 0);
        assert!(log.written_len() > 0);
        log.append_chunk(&[nonce_entry(3)], true).unwrap();
        assert_eq!(log.synced_len(), log.written_len(), "interval reached → fsync");
        // Non-batch chunks (view-change entries) never bump the counter.
        log.append_chunk(&[nonce_entry(4)], false).unwrap();
        assert!(log.synced_len() < log.written_len());
    }

    /// Watermarks are global byte offsets: after a roll they keep
    /// growing monotonically instead of resetting to the new tail file,
    /// and the `[synced, written)` crash window always sits inside the
    /// tail (mapped there by `completed_len`).
    #[test]
    fn watermarks_are_global_across_rolls() {
        let td = TestDir::new("global-marks");
        let (mut log, _) = DurableLog::open_with_roll(&td.0, 4, 128).unwrap();
        let mut last_written = 0;
        let mut total_files_seen = 1;
        for i in 0..64 {
            log.append_chunk(&[nonce_entry(i)], true).unwrap();
            assert!(
                log.written_len() > last_written,
                "global written watermark must be monotonic across rolls"
            );
            last_written = log.written_len();
            assert!(log.synced_len() <= log.written_len());
            assert!(
                log.synced_len() >= log.completed_len(),
                "completed files are always durable: a roll fsyncs the old tail"
            );
            total_files_seen = total_files_seen.max(log.files.len());
        }
        assert!(total_files_seen > 2, "roll size must have produced several files");
        // The written watermark equals the sum of all file lengths on disk.
        let disk_total: u64 = (0..log.files.len())
            .map(|i| fs::metadata(seg_path(&td.0, i)).unwrap().len())
            .sum();
        assert_eq!(log.written_len(), disk_total);
        // And reopening reports the same global offsets.
        drop(log);
        let (log, _) = DurableLog::open_with_roll(&td.0, 4, 128).unwrap();
        assert_eq!(log.written_len(), disk_total);
        assert_eq!(log.synced_len(), disk_total, "a clean reopen is fully synced");
    }

    /// A rollback whose floor lands in an *earlier* segment file, under a
    /// crash sweep of the re-appended tail: every cut point must reopen
    /// to a consistent chunk-boundary prefix of the post-rollback
    /// history.
    #[test]
    fn truncate_across_file_boundary_under_crash_sweep() {
        let td = TestDir::new("trunc-boundary");
        let all: Vec<LedgerEntry> = (0..40).map(nonce_entry).collect();
        let rewritten: Vec<LedgerEntry> = (100..106).map(nonce_entry).collect();
        let (mut log, _) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
        for e in &all {
            log.append_chunk(std::slice::from_ref(e), true).unwrap();
        }
        let n_files = log.files.len();
        assert!(n_files > 2);
        // Pick a keep-count that lives in the first file: the truncation
        // spans every later segment file.
        let keep = log
            .chunks
            .iter()
            .take_while(|c| c.file == 0)
            .last()
            .map(|c| c.entry_end)
            .unwrap();
        let floor = log.truncate_entries(keep).unwrap();
        assert_eq!(floor, keep, "single-entry chunks truncate exactly");
        assert_eq!(log.files.len(), 1, "later files dropped by the rollback");
        assert_eq!(log.completed_len(), 0);
        // Divergent history replaces the dropped suffix and rolls again.
        for e in &rewritten {
            log.append_chunk(std::slice::from_ref(e), true).unwrap();
        }
        let expect: Vec<LedgerEntry> =
            all[..keep as usize].iter().chain(&rewritten).cloned().collect();
        let synced = log.synced_len();
        let written = log.written_len();
        let completed = log.completed_len();
        assert_eq!(synced, written, "fsync interval 1 syncs every batch");
        let tail = log.tail_file_path();
        drop(log);
        // Crash sweep: cut the tail file at every byte length from empty
        // to fully written (global offsets mapped onto the tail file).
        let pristine = fs::read(&tail).unwrap();
        for cut in (completed..=written).rev() {
            let tail_cut = cut - completed;
            let f = OpenOptions::new().write(true).open(&tail).unwrap();
            f.set_len(tail_cut).unwrap();
            drop(f);
            let (log, prefix) = DurableLog::open_with_roll(&td.0, 1, 128).unwrap();
            assert!(
                expect.starts_with(&prefix),
                "cut at global byte {cut}: prefix must be a chunk-boundary prefix"
            );
            assert!(prefix.len() >= keep as usize, "cut never reaches completed files");
            assert_eq!(log.entry_count(), prefix.len() as u64);
            drop(log);
            fs::write(&tail, &pristine).unwrap();
        }
    }

    /// The suffix layout: `create_suffix` writes a manifest that survives
    /// reopen, `retire_to_archive` moves the old run aside, and a suffix
    /// log round-trips entries with relative indexing.
    #[test]
    fn suffix_log_manifest_and_archive_roundtrip() {
        let td = TestDir::new("suffix");
        let old: Vec<LedgerEntry> = (0..10).map(nonce_entry).collect();
        {
            let (mut log, _) = DurableLog::open_with_roll(&td.0, 1, 64).unwrap();
            for e in &old {
                log.append_chunk(std::slice::from_ref(e), true).unwrap();
            }
            assert!(log.files.len() > 1);
        }
        assert!(DurableLog::dir_is_occupied(&td.0));
        DurableLog::retire_to_archive(&td.0, 10).unwrap();
        assert!(!seg_path(&td.0, 0).exists(), "old segments moved out of the way");
        let archive = td.0.join(ARCHIVE_DIR).join("upto-000000000010");
        assert!(archive.join("ledger-000000.seg").exists());
        let suffix: Vec<LedgerEntry> = (10..16).map(nonce_entry).collect();
        {
            let mut log = DurableLog::create_suffix(&td.0, 1, 64, 10).unwrap();
            assert_eq!(log.base(), 10);
            assert_eq!(log.entry_count(), 0);
            for e in &suffix {
                log.append_chunk(std::slice::from_ref(e), true).unwrap();
            }
        }
        let (log, prefix) = DurableLog::open_with_roll(&td.0, 1, 64).unwrap();
        assert_eq!(log.base(), 10, "manifest base survives reopen");
        assert_eq!(prefix, suffix);
        // Reads are relative to the run, not absolute.
        let encoded = log.read_encoded_range(0, 2).unwrap();
        assert_eq!(LedgerEntry::from_bytes(&encoded[0]).unwrap(), suffix[0]);
        // create_suffix refuses a directory that still holds segments.
        assert!(DurableLog::create_suffix(&td.0, 1, 64, 20).is_err());
    }

    /// The injected-fault hook: a failed write surfaces as an error (for
    /// the owner to detach on) and the log object stays usable for the
    /// next call.
    #[test]
    fn injected_write_error_fails_once() {
        let td = TestDir::new("inject");
        let (mut log, _) = DurableLog::open(&td.0, 1).unwrap();
        log.append_chunk(&[nonce_entry(0)], true).unwrap();
        log.inject_write_error();
        assert!(log.append_chunk(&[nonce_entry(1)], true).is_err());
        log.append_chunk(&[nonce_entry(1)], true).unwrap();
        log.inject_write_error();
        assert!(log.truncate_entries(1).is_err());
        assert_eq!(log.truncate_entries(1).unwrap(), 1);
    }
}
