//! The store proper: ordered map + undo log + transaction/batch marks.

use std::collections::BTreeMap;

use ia_ccf_crypto::Digest;

use crate::checkpoint::KvCheckpoint;
use crate::write_set::TxWriteSet;
use crate::{Key, Value};

/// Errors from misuse of the transactional API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// A data operation or commit was attempted with no open transaction.
    NoOpenTransaction,
    /// `begin_tx` was called while a transaction was already open.
    TransactionAlreadyOpen,
    /// A rollback target batch is not (or no longer) tracked.
    UnknownBatch,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::NoOpenTransaction => write!(f, "no open transaction"),
            KvError::TransactionAlreadyOpen => write!(f, "transaction already open"),
            KvError::UnknownBatch => write!(f, "unknown batch sequence number"),
        }
    }
}

impl std::error::Error for KvError {}

/// One undo record: the value `key` had before the write (None = absent).
#[derive(Debug, Clone)]
struct UndoOp {
    key: Key,
    prior: Option<Value>,
}

/// Marks where a batch's undo records begin, keyed by sequence number.
#[derive(Debug, Clone)]
struct BatchMark {
    seq: u64,
    undo_len: usize,
}

/// A strictly-serializable KV store with transaction- and batch-granularity
/// rollback and checkpointing. See the crate docs for the paper mapping.
#[derive(Debug, Default)]
pub struct KvStore {
    map: BTreeMap<Key, Value>,
    undo: Vec<UndoOp>,
    /// Undo-log length at `begin_tx`, plus the accumulating write set.
    open_tx: Option<(usize, TxWriteSet)>,
    batch_marks: Vec<BatchMark>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Read a key. Reads inside a transaction see the transaction's own
    /// earlier writes (read-your-writes), since writes apply in place.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.map.get(key)
    }

    /// Iterate over all live entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }

    /// The concrete map iterator — the sharded store's k-way merge needs a
    /// nameable type to hold peekable per-shard cursors.
    pub(crate) fn raw_iter(&self) -> std::collections::btree_map::Iter<'_, Key, Value> {
        self.map.iter()
    }

    /// Apply one already-committed write (the ordered write-set merge of
    /// sharded execution). Records an undo entry so batch rollback still
    /// works, but needs no open transaction: the write set was produced —
    /// and its digest recorded — by the speculative execution that owns
    /// transaction semantics.
    pub(crate) fn apply_one(&mut self, key: Key, value: Option<Value>) {
        debug_assert!(self.open_tx.is_none(), "write-set merge must run outside transactions");
        let prior = match value {
            Some(v) => self.map.insert(key.clone(), v),
            None => self.map.remove(&key),
        };
        self.undo.push(UndoOp { key, prior });
    }

    /// Replace the contents wholesale (per-shard restore); clears all undo
    /// state like [`KvStore::restore`].
    pub(crate) fn set_entries(&mut self, entries: BTreeMap<Key, Value>) {
        self.map = entries;
        self.undo.clear();
        self.open_tx = None;
        self.batch_marks.clear();
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Open a transaction. Exactly one may be open at a time (replicas
    /// execute serially in ledger order).
    pub fn begin_tx(&mut self) -> Result<(), KvError> {
        if self.open_tx.is_some() {
            return Err(KvError::TransactionAlreadyOpen);
        }
        self.open_tx = Some((self.undo.len(), TxWriteSet::new()));
        Ok(())
    }

    /// Write `key = value` inside the open transaction.
    pub fn put(&mut self, key: Key, value: Value) -> Result<(), KvError> {
        let (_, ws) = self.open_tx.as_mut().ok_or(KvError::NoOpenTransaction)?;
        ws.record_put(key.clone(), value.clone());
        let prior = self.map.insert(key.clone(), value);
        self.undo.push(UndoOp { key, prior });
        Ok(())
    }

    /// Delete `key` inside the open transaction.
    pub fn delete(&mut self, key: Key) -> Result<(), KvError> {
        let (_, ws) = self.open_tx.as_mut().ok_or(KvError::NoOpenTransaction)?;
        ws.record_delete(key.clone());
        let prior = self.map.remove(&key);
        self.undo.push(UndoOp { key, prior });
        Ok(())
    }

    /// Commit the open transaction, returning its write set. The undo
    /// records are retained so the *batch* can still be rolled back
    /// (Lemma 1) until [`KvStore::release_batches_up_to`] frees them.
    pub fn commit_tx(&mut self) -> Result<TxWriteSet, KvError> {
        let (_, ws) = self.open_tx.take().ok_or(KvError::NoOpenTransaction)?;
        Ok(ws)
    }

    /// Abort the open transaction, undoing its writes.
    pub fn abort_tx(&mut self) -> Result<(), KvError> {
        let (mark, _) = self.open_tx.take().ok_or(KvError::NoOpenTransaction)?;
        self.undo_to(mark);
        Ok(())
    }

    /// Whether a transaction is currently open.
    pub fn in_tx(&self) -> bool {
        self.open_tx.is_some()
    }

    // ------------------------------------------------------------------
    // Batches (Lemma 1: roll back a suffix of executed batches)
    // ------------------------------------------------------------------

    /// Mark the start of batch `seq`. Batches must be begun in increasing
    /// sequence order.
    pub fn begin_batch(&mut self, seq: u64) {
        debug_assert!(self.batch_marks.last().is_none_or(|m| m.seq < seq));
        self.batch_marks.push(BatchMark { seq, undo_len: self.undo.len() });
    }

    /// Roll back every batch with sequence number `>= seq` (and any open
    /// transaction), restoring the store to the state at `seq`'s start.
    pub fn rollback_to_batch(&mut self, seq: u64) -> Result<(), KvError> {
        let pos = self
            .batch_marks
            .iter()
            .position(|m| m.seq >= seq)
            .ok_or(KvError::UnknownBatch)?;
        self.open_tx = None;
        let target = self.batch_marks[pos].undo_len;
        self.undo_to(target);
        self.batch_marks.truncate(pos);
        Ok(())
    }

    /// Drop undo state for batches with sequence number `<= seq`; they are
    /// committed (prepared at N−f replicas) and can no longer be rolled back.
    pub fn release_batches_up_to(&mut self, seq: u64) {
        let keep_from = self.batch_marks.iter().position(|m| m.seq > seq);
        match keep_from {
            Some(0) => {}
            Some(i) => {
                let first_kept_undo = self.batch_marks[i].undo_len;
                self.undo.drain(..first_kept_undo);
                for m in &mut self.batch_marks[i..] {
                    m.undo_len -= first_kept_undo;
                }
                self.batch_marks.drain(..i);
            }
            None => {
                // Everything released. Any open tx keeps its relative mark.
                let base = self.open_tx.as_ref().map_or(self.undo.len(), |(m, _)| *m);
                self.undo.drain(..base);
                if let Some((m, _)) = self.open_tx.as_mut() {
                    *m = 0;
                }
                self.batch_marks.clear();
            }
        }
    }

    fn undo_to(&mut self, target: usize) {
        while self.undo.len() > target {
            let op = self.undo.pop().expect("len checked");
            match op.prior {
                Some(v) => {
                    self.map.insert(op.key, v);
                }
                None => {
                    self.map.remove(&op.key);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    /// Deterministic digest over the full store contents. O(n) — the cost
    /// that makes frequent checkpoints over large stores expensive (Fig. 6).
    pub fn digest(&self) -> Digest {
        crate::digest_entries(self.map.len(), self.map.iter())
    }

    /// Snapshot the current state into a checkpoint (digest + contents).
    pub fn checkpoint(&self) -> KvCheckpoint {
        KvCheckpoint::from_entries(self.map.clone())
    }

    /// Replace the store contents from a checkpoint; clears all undo state.
    pub fn restore(&mut self, cp: &KvCheckpoint) {
        self.set_entries(cp.entries().clone());
    }
}

/// [`KvAccess`] routes straight to the inherent methods: a single-store
/// replica (or the auditor's replay) is the degenerate one-shard case.
impl crate::KvAccess for KvStore {
    fn get(&self, key: &[u8]) -> Option<&Value> {
        KvStore::get(self, key)
    }

    fn put(&mut self, key: Key, value: Value) -> Result<(), KvError> {
        KvStore::put(self, key, value)
    }

    fn delete(&mut self, key: Key) -> Result<(), KvError> {
        KvStore::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        s.as_bytes().to_vec()
    }
    fn v(s: &str) -> Value {
        s.as_bytes().to_vec()
    }

    #[test]
    fn put_get_delete_inside_tx() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("1")).unwrap();
        assert_eq!(kv.get(b"a"), Some(&v("1")));
        kv.delete(k("a")).unwrap();
        assert_eq!(kv.get(b"a"), None);
        kv.commit_tx().unwrap();
    }

    #[test]
    fn ops_require_open_tx() {
        let mut kv = KvStore::new();
        assert_eq!(kv.put(k("a"), v("1")), Err(KvError::NoOpenTransaction));
        assert_eq!(kv.delete(k("a")), Err(KvError::NoOpenTransaction));
        assert_eq!(kv.commit_tx().unwrap_err(), KvError::NoOpenTransaction);
        kv.begin_tx().unwrap();
        assert_eq!(kv.begin_tx(), Err(KvError::TransactionAlreadyOpen));
    }

    #[test]
    fn abort_restores_prior_state() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("1")).unwrap();
        kv.commit_tx().unwrap();

        kv.begin_tx().unwrap();
        kv.put(k("a"), v("2")).unwrap();
        kv.put(k("b"), v("3")).unwrap();
        kv.delete(k("a")).unwrap();
        kv.abort_tx().unwrap();

        assert_eq!(kv.get(b"a"), Some(&v("1")));
        assert_eq!(kv.get(b"b"), None);
    }

    #[test]
    fn write_set_reflects_final_tx_effects() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(k("x"), v("1")).unwrap();
        kv.put(k("x"), v("2")).unwrap();
        kv.put(k("y"), v("9")).unwrap();
        kv.delete(k("y")).unwrap();
        let ws = kv.commit_tx().unwrap();
        assert_eq!(ws.get(b"x"), Some(Some(v("2").as_slice())));
        assert_eq!(ws.get(b"y"), Some(None));
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn batch_rollback_undoes_committed_txs() {
        let mut kv = KvStore::new();
        kv.begin_batch(1);
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("1")).unwrap();
        kv.commit_tx().unwrap();

        kv.begin_batch(2);
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("2")).unwrap();
        kv.put(k("b"), v("1")).unwrap();
        kv.commit_tx().unwrap();

        kv.begin_batch(3);
        kv.begin_tx().unwrap();
        kv.delete(k("a")).unwrap();
        kv.commit_tx().unwrap();

        kv.rollback_to_batch(2).unwrap();
        assert_eq!(kv.get(b"a"), Some(&v("1")));
        assert_eq!(kv.get(b"b"), None);

        // Batches 2 and 3 are gone; rolling back to 2 again fails.
        assert_eq!(kv.rollback_to_batch(2), Err(KvError::UnknownBatch));
        // Batch 1 can still be rolled back.
        kv.rollback_to_batch(1).unwrap();
        assert_eq!(kv.get(b"a"), None);
    }

    #[test]
    fn release_then_rollback_of_released_batch_fails() {
        let mut kv = KvStore::new();
        for s in 1..=4u64 {
            kv.begin_batch(s);
            kv.begin_tx().unwrap();
            kv.put(k(&format!("k{s}")), v("x")).unwrap();
            kv.commit_tx().unwrap();
        }
        kv.release_batches_up_to(2);
        assert_eq!(kv.rollback_to_batch(2), Ok(())); // rolls back 3.. (first mark >= 2 is 3)
        assert_eq!(kv.get(b"k3"), None);
        assert_eq!(kv.get(b"k2"), Some(&v("x")));
    }

    #[test]
    fn release_all_keeps_map_and_clears_undo() {
        let mut kv = KvStore::new();
        kv.begin_batch(1);
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("1")).unwrap();
        kv.commit_tx().unwrap();
        kv.release_batches_up_to(10);
        assert_eq!(kv.get(b"a"), Some(&v("1")));
        assert_eq!(kv.rollback_to_batch(1), Err(KvError::UnknownBatch));
    }

    #[test]
    fn digest_changes_with_content_and_is_order_independent_of_insertion() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.begin_tx().unwrap();
        a.put(k("x"), v("1")).unwrap();
        a.put(k("y"), v("2")).unwrap();
        a.commit_tx().unwrap();
        b.begin_tx().unwrap();
        b.put(k("y"), v("2")).unwrap();
        b.put(k("x"), v("1")).unwrap();
        b.commit_tx().unwrap();
        assert_eq!(a.digest(), b.digest());

        b.begin_tx().unwrap();
        b.put(k("x"), v("3")).unwrap();
        b.commit_tx().unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(k("a"), v("1")).unwrap();
        kv.put(k("b"), v("2")).unwrap();
        kv.commit_tx().unwrap();
        let cp = kv.checkpoint();
        assert_eq!(cp.digest(), kv.digest());

        kv.begin_tx().unwrap();
        kv.delete(k("a")).unwrap();
        kv.put(k("c"), v("3")).unwrap();
        kv.commit_tx().unwrap();
        assert_ne!(cp.digest(), kv.digest());

        kv.restore(&cp);
        assert_eq!(kv.digest(), cp.digest());
        assert_eq!(kv.get(b"a"), Some(&v("1")));
        assert_eq!(kv.get(b"c"), None);
    }

    #[test]
    fn empty_store_digest_is_stable() {
        assert_eq!(KvStore::new().digest(), KvStore::new().digest());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, u8),
        Delete(u8),
        CommitTx,
        AbortTx,
        NewBatch,
        RollbackLastBatch,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            any::<u8>().prop_map(Op::Delete),
            Just(Op::CommitTx),
            Just(Op::AbortTx),
            Just(Op::NewBatch),
            Just(Op::RollbackLastBatch),
        ]
    }

    proptest! {
        /// The store, driven by arbitrary op sequences, always matches a
        /// model that snapshots a HashMap at tx/batch boundaries.
        #[test]
        fn matches_snapshot_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut kv = KvStore::new();
            let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            type Model = HashMap<Vec<u8>, Vec<u8>>;
            let mut tx_snapshot: Option<Model> = None;
            let mut batch_snapshots: Vec<(u64, Model)> = Vec::new();
            let mut next_seq = 1u64;

            kv.begin_batch(0);
            batch_snapshots.push((0, model.clone()));

            for op in ops {
                match op {
                    Op::Put(kb, vb) => {
                        if tx_snapshot.is_none() {
                            kv.begin_tx().unwrap();
                            tx_snapshot = Some(model.clone());
                        }
                        kv.put(vec![kb], vec![vb]).unwrap();
                        model.insert(vec![kb], vec![vb]);
                    }
                    Op::Delete(kb) => {
                        if tx_snapshot.is_none() {
                            kv.begin_tx().unwrap();
                            tx_snapshot = Some(model.clone());
                        }
                        kv.delete(vec![kb]).unwrap();
                        model.remove(&vec![kb]);
                    }
                    Op::CommitTx => {
                        if tx_snapshot.is_some() {
                            kv.commit_tx().unwrap();
                            tx_snapshot = None;
                        }
                    }
                    Op::AbortTx => {
                        if let Some(snap) = tx_snapshot.take() {
                            kv.abort_tx().unwrap();
                            model = snap;
                        }
                    }
                    Op::NewBatch => {
                        if tx_snapshot.is_some() {
                            kv.commit_tx().unwrap();
                            tx_snapshot = None;
                        }
                        kv.begin_batch(next_seq);
                        batch_snapshots.push((next_seq, model.clone()));
                        next_seq += 1;
                    }
                    Op::RollbackLastBatch => {
                        if let Some((seq, snap)) = batch_snapshots.pop() {
                            kv.rollback_to_batch(seq).unwrap();
                            model = snap;
                            tx_snapshot = None;
                        }
                    }
                }
                // Compare live state against the model after every step.
                for (mk, mv) in &model {
                    prop_assert_eq!(kv.get(mk), Some(mv));
                }
                prop_assert_eq!(kv.len(), model.len());
            }
        }
    }
}
