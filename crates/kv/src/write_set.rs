//! Per-transaction write sets.
//!
//! The ledger entry for a transaction is `⟨t, i, o⟩` where `o` "includes the
//! reply sent to the client and the hash of the transaction's write-set"
//! (Fig. 3). The write-set digest lets an auditor replaying the ledger
//! confirm a transaction's *effects*, not just its reply bytes.

use std::collections::BTreeMap;

use ia_ccf_crypto::{Digest, Hasher};

use crate::{Key, Value};

/// The net effect of one transaction: for each touched key, the final value
/// (`Some`) or deletion (`None`). Later writes to the same key overwrite
/// earlier ones, so this is canonical regardless of the write order inside
/// the transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxWriteSet {
    writes: BTreeMap<Key, Option<Value>>,
}

impl TxWriteSet {
    /// An empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_put(&mut self, key: Key, value: Value) {
        self.writes.insert(key, Some(value));
    }

    pub(crate) fn record_delete(&mut self, key: Key) {
        self.writes.insert(key, None);
    }

    /// Build a write set directly from a final-effects map (the speculative
    /// execution path accumulates exactly this shape).
    pub(crate) fn from_map(writes: BTreeMap<Key, Option<Value>>) -> Self {
        TxWriteSet { writes }
    }

    /// Fold `other` into `self`. Used to merge the per-shard fragments of
    /// one transaction's write set; fragments partition the key space, so
    /// the union is canonical.
    pub(crate) fn absorb(&mut self, other: TxWriteSet) {
        if self.writes.is_empty() {
            self.writes = other.writes;
        } else {
            self.writes.extend(other.writes);
        }
    }

    /// Final effect on `key`: `None` if untouched, `Some(None)` if deleted,
    /// `Some(Some(v))` if written.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.writes.get(key).map(|v| v.as_deref())
    }

    /// Number of touched keys.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the transaction touched no keys (read-only).
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Iterate over the touched keys in order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Option<Value>)> {
        self.writes.iter()
    }

    /// Canonical digest of the write set, recorded in the ledger entry's
    /// result `o`.
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::new();
        h.update((self.writes.len() as u64).to_le_bytes());
        for (k, v) in &self.writes {
            h.update((k.len() as u32).to_le_bytes());
            h.update(k);
            match v {
                Some(v) => {
                    h.update([1u8]);
                    h.update((v.len() as u32).to_le_bytes());
                    h.update(v);
                }
                None => h.update([0u8]),
            }
        }
        h.finalize()
    }
}

/// Consuming iteration in key order — the ordered write-set merge applies
/// a transaction's final effects without cloning keys or values.
impl IntoIterator for TxWriteSet {
    type Item = (Key, Option<Value>);
    type IntoIter = std::collections::btree_map::IntoIter<Key, Option<Value>>;

    fn into_iter(self) -> Self::IntoIter {
        self.writes.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_insertion_order_independent() {
        let mut a = TxWriteSet::new();
        a.record_put(b"k1".to_vec(), b"v1".to_vec());
        a.record_put(b"k2".to_vec(), b"v2".to_vec());
        let mut b = TxWriteSet::new();
        b.record_put(b"k2".to_vec(), b"v2".to_vec());
        b.record_put(b"k1".to_vec(), b"v1".to_vec());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_delete_from_empty_value() {
        let mut del = TxWriteSet::new();
        del.record_delete(b"k".to_vec());
        let mut empty = TxWriteSet::new();
        empty.record_put(b"k".to_vec(), Vec::new());
        assert_ne!(del.digest(), empty.digest());
    }

    #[test]
    fn last_write_wins() {
        let mut ws = TxWriteSet::new();
        ws.record_put(b"k".to_vec(), b"a".to_vec());
        ws.record_delete(b"k".to_vec());
        ws.record_put(b"k".to_vec(), b"b".to_vec());
        assert_eq!(ws.get(b"k"), Some(Some(b"b".as_slice())));
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn empty_write_set_digest_is_stable() {
        assert_eq!(TxWriteSet::new().digest(), TxWriteSet::new().digest());
        assert!(TxWriteSet::new().is_empty());
    }
}
