//! Transactional key-value store for IA-CCF.
//!
//! §2: "Transactions are executed by replicas against a strictly-serializable
//! key-value store that supports roll-back at transaction granularity."
//! Appx. A Lemma 1 additionally requires rolling back a *suffix of executed
//! batches* (early execution may run ahead of agreement and must be undone on
//! divergence or view change), and §3.4 requires periodic checkpoints with
//! digests.
//!
//! This crate supplies exactly those operations:
//!
//! * [`KvStore::begin_tx`] / [`KvStore::put`] / [`KvStore::delete`] /
//!   [`KvStore::commit_tx`] / [`KvStore::abort_tx`] — transaction-granularity
//!   execution with an undo log and per-transaction write sets (whose digest
//!   goes into the ledger entry's result `o`, Fig. 3);
//! * [`KvStore::begin_batch`] / [`KvStore::rollback_to_batch`] /
//!   [`KvStore::release_batches_up_to`] — batch-suffix rollback (Lemma 1);
//! * [`KvStore::digest`] / [`KvStore::checkpoint`] / [`KvStore::restore`] —
//!   checkpoint creation and restoration (§3.4, §4.1 replay).
//!
//! Strict serializability still holds with sharded execution: replicas
//! commit effects in ledger order — conflict-free transaction groups
//! execute speculatively ([`SpeculativeGroup`]) and their write sets are
//! merged back **in original batch order**
//! ([`ShardedKvStore::apply_write_set`]), so the observable history is the
//! serial one (Lemma 2 unchanged).
//!
//! CCF uses a CHAMP map; we use ordered maps with O(log n) access, which
//! reproduces Fig. 7's "throughput decreases as the store grows" shape.
//! [`ShardedKvStore`] splits the key space into hash-partitioned shards
//! ([`shard_of`]); every digest/checkpoint is computed over the merged key
//! order and is byte-identical for any shard count.

mod checkpoint;
mod shard;
mod speculative;
mod store;
mod write_set;

pub use checkpoint::KvCheckpoint;
pub use shard::{shard_of, MergedIter, ShardedKvStore};
pub use speculative::{SpeculativeGroup, SpeculativeTx};
pub use store::{KvError, KvStore};
pub use write_set::TxWriteSet;

/// Keys are arbitrary byte strings.
pub type Key = Vec<u8>;
/// Values are arbitrary byte strings.
pub type Value = Vec<u8>;

/// The canonical store-contents digest:
/// `len ‖ (key-len ‖ key ‖ value-len ‖ value)*` over entries in global
/// key order. Single definition on purpose — [`KvStore::digest`],
/// [`ShardedKvStore::digest`] and [`KvCheckpoint`] digests must stay
/// byte-identical, since checkpoint agreement and audit replay compare
/// them across replicas with different shard layouts.
pub(crate) fn digest_entries<'a>(
    len: usize,
    entries: impl Iterator<Item = (&'a Key, &'a Value)>,
) -> ia_ccf_crypto::Digest {
    let mut h = ia_ccf_crypto::Hasher::new();
    h.update((len as u64).to_le_bytes());
    for (k, v) in entries {
        h.update((k.len() as u32).to_le_bytes());
        h.update(k);
        h.update((v.len() as u32).to_le_bytes());
        h.update(v);
    }
    h.finalize()
}

/// Object-safe data-plane access to a store: the subset of operations a
/// stored procedure may perform. Implemented by [`KvStore`] (single store:
/// auditor replay, tests), [`ShardedKvStore`] (the replica's serial
/// execution lane) and [`SpeculativeTx`] (conflict-free groups executing
/// in parallel). Keeping `App::execute` behind this trait is what lets the
/// execution stage swap the backing view without the application noticing.
pub trait KvAccess {
    /// Read a key (read-your-writes inside a transaction).
    fn get(&self, key: &[u8]) -> Option<&Value>;
    /// Write `key = value` inside the open transaction.
    fn put(&mut self, key: Key, value: Value) -> Result<(), KvError>;
    /// Delete `key` inside the open transaction.
    fn delete(&mut self, key: Key) -> Result<(), KvError>;
}
