//! Transactional key-value store for IA-CCF.
//!
//! §2: "Transactions are executed by replicas against a strictly-serializable
//! key-value store that supports roll-back at transaction granularity."
//! Appx. A Lemma 1 additionally requires rolling back a *suffix of executed
//! batches* (early execution may run ahead of agreement and must be undone on
//! divergence or view change), and §3.4 requires periodic checkpoints with
//! digests.
//!
//! This crate supplies exactly those operations:
//!
//! * [`KvStore::begin_tx`] / [`KvStore::put`] / [`KvStore::delete`] /
//!   [`KvStore::commit_tx`] / [`KvStore::abort_tx`] — transaction-granularity
//!   execution with an undo log and per-transaction write sets (whose digest
//!   goes into the ledger entry's result `o`, Fig. 3);
//! * [`KvStore::begin_batch`] / [`KvStore::rollback_to_batch`] /
//!   [`KvStore::release_batches_up_to`] — batch-suffix rollback (Lemma 1);
//! * [`KvStore::digest`] / [`KvStore::checkpoint`] / [`KvStore::restore`] —
//!   checkpoint creation and restoration (§3.4, §4.1 replay).
//!
//! Strict serializability holds trivially: replicas execute transactions
//! single-threaded in ledger order, and clients only observe results after
//! commit (Lemma 2).
//!
//! CCF uses a CHAMP map; we use an ordered map with O(log n) access, which
//! reproduces Fig. 7's "throughput decreases as the store grows" shape.

mod checkpoint;
mod store;
mod write_set;

pub use checkpoint::KvCheckpoint;
pub use store::{KvError, KvStore};
pub use write_set::TxWriteSet;

/// Keys are arbitrary byte strings.
pub type Key = Vec<u8>;
/// Values are arbitrary byte strings.
pub type Value = Vec<u8>;
