//! Speculative transaction execution for conflict-free groups.
//!
//! The execution stage partitions a batch into groups whose **declared key
//! footprints** do not overlap (see `App::key_hints` in `ia-ccf-core`).
//! Each group executes speculatively against a shared immutable view of
//! the store: reads see the pre-batch state plus the group's own earlier
//! writes, writes accumulate in a delta map, and each committed
//! transaction yields the exact [`TxWriteSet`] serial execution would have
//! produced. The write sets are then merged into the authoritative
//! [`crate::ShardedKvStore`] **in original batch order**
//! ([`crate::ShardedKvStore::apply_write_set`]), so ledger bytes, result
//! outputs and write-set digests are byte-identical to serial execution.
//!
//! Why this is equivalent to serial execution: transactions only ever
//! touch keys inside their declared footprint (enforced here — an access
//! outside the footprint panics, failing loudly rather than risking
//! replica divergence), footprint-overlapping transactions share a group
//! and run in batch order within it, and transactions in different groups
//! are key-disjoint, so no read can miss a write it would have seen
//! serially.

use std::collections::BTreeMap;

use crate::shard::ShardedKvStore;
use crate::store::KvError;
use crate::write_set::TxWriteSet;
use crate::{Key, Value};

/// One conflict-free group's speculative execution context: the pre-batch
/// base state plus the writes of the group's already-committed
/// transactions.
pub struct SpeculativeGroup<'a> {
    base: &'a ShardedKvStore,
    committed: BTreeMap<Key, Option<Value>>,
}

impl<'a> SpeculativeGroup<'a> {
    /// A fresh group over the pre-batch store state.
    pub fn new(base: &'a ShardedKvStore) -> Self {
        SpeculativeGroup { base, committed: BTreeMap::new() }
    }

    /// Open the next transaction of the group. `footprint` is the
    /// transaction's declared key set; any access outside it panics (a
    /// `key_hints` implementation bug must fail loudly, not diverge).
    pub fn begin_tx<'g>(&'g mut self, footprint: &'g [Key]) -> SpeculativeTx<'g, 'a> {
        SpeculativeTx { group: self, footprint, delta: BTreeMap::new() }
    }
}

/// One in-flight speculative transaction. Commit folds its delta into the
/// group and returns the canonical write set; abort discards it.
pub struct SpeculativeTx<'g, 'a> {
    group: &'g mut SpeculativeGroup<'a>,
    footprint: &'g [Key],
    delta: BTreeMap<Key, Option<Value>>,
}

impl SpeculativeTx<'_, '_> {
    fn check_footprint(&self, key: &[u8]) {
        assert!(
            self.footprint.iter().any(|k| k.as_slice() == key),
            "transaction touched key {key:02x?} outside its declared footprint \
             (key_hints under-approximated the access set)"
        );
    }

    /// Commit: the delta becomes visible to the group's later transactions
    /// and is returned as the transaction's canonical write set.
    pub fn commit(self) -> TxWriteSet {
        for (k, v) in &self.delta {
            self.group.committed.insert(k.clone(), v.clone());
        }
        TxWriteSet::from_map(self.delta)
    }

    /// Commit the group's **final** transaction: no later transaction will
    /// read the group delta, so skip publishing into it. Singleton groups
    /// dominate uncontended workloads, making this the hot-path commit —
    /// it avoids cloning every written key and value for nothing.
    pub fn commit_final(self) -> TxWriteSet {
        TxWriteSet::from_map(self.delta)
    }

    /// Abort: discard the delta (failed transactions change nothing).
    pub fn abort(self) {}
}

impl crate::KvAccess for SpeculativeTx<'_, '_> {
    fn get(&self, key: &[u8]) -> Option<&Value> {
        self.check_footprint(key);
        if let Some(v) = self.delta.get(key) {
            return v.as_ref();
        }
        if let Some(v) = self.group.committed.get(key) {
            return v.as_ref();
        }
        self.group.base.get(key)
    }

    fn put(&mut self, key: Key, value: Value) -> Result<(), KvError> {
        self.check_footprint(&key);
        self.delta.insert(key, Some(value));
        Ok(())
    }

    fn delete(&mut self, key: Key) -> Result<(), KvError> {
        self.check_footprint(&key);
        self.delta.insert(key, None);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvAccess;

    fn base_with(entries: &[(&str, &str)]) -> ShardedKvStore {
        let mut kv = ShardedKvStore::new(4);
        kv.begin_tx().unwrap();
        for (k, v) in entries {
            kv.put(k.as_bytes().to_vec(), v.as_bytes().to_vec()).unwrap();
        }
        kv.commit_tx().unwrap();
        kv
    }

    fn keys(names: &[&str]) -> Vec<Key> {
        names.iter().map(|n| n.as_bytes().to_vec()).collect()
    }

    #[test]
    fn reads_see_base_then_group_then_own_writes() {
        let base = base_with(&[("a", "base")]);
        let mut group = SpeculativeGroup::new(&base);
        let fp = keys(&["a"]);

        let mut tx1 = group.begin_tx(&fp);
        assert_eq!(tx1.get(b"a"), Some(&b"base".to_vec()));
        tx1.put(b"a".to_vec(), b"one".to_vec()).unwrap();
        assert_eq!(tx1.get(b"a"), Some(&b"one".to_vec()), "read-your-writes");
        let ws = tx1.commit();
        assert_eq!(ws.get(b"a"), Some(Some(b"one".as_slice())));

        let tx2 = group.begin_tx(&fp);
        assert_eq!(tx2.get(b"a"), Some(&b"one".to_vec()), "later txs see group writes");
    }

    #[test]
    fn abort_discards_delta_and_base_is_never_mutated() {
        let base = base_with(&[("a", "base")]);
        let mut group = SpeculativeGroup::new(&base);
        let fp = keys(&["a"]);
        let mut tx = group.begin_tx(&fp);
        tx.delete(b"a".to_vec()).unwrap();
        tx.abort();
        let tx = group.begin_tx(&fp);
        assert_eq!(tx.get(b"a"), Some(&b"base".to_vec()));
        drop(tx);
        assert_eq!(base.get(b"a"), Some(&b"base".to_vec()));
    }

    #[test]
    fn write_set_matches_serial_execution() {
        let base = base_with(&[("x", "0")]);
        let mut group = SpeculativeGroup::new(&base);
        let fp = keys(&["x", "y"]);
        let mut tx = group.begin_tx(&fp);
        tx.put(b"x".to_vec(), b"1".to_vec()).unwrap();
        tx.put(b"x".to_vec(), b"2".to_vec()).unwrap();
        tx.put(b"y".to_vec(), b"9".to_vec()).unwrap();
        tx.delete(b"y".to_vec()).unwrap();
        let spec_ws = tx.commit();

        let mut serial = crate::KvStore::new();
        serial.begin_tx().unwrap();
        serial.put(b"x".to_vec(), b"0".to_vec()).unwrap();
        serial.commit_tx().unwrap();
        serial.begin_tx().unwrap();
        serial.put(b"x".to_vec(), b"1".to_vec()).unwrap();
        serial.put(b"x".to_vec(), b"2".to_vec()).unwrap();
        serial.put(b"y".to_vec(), b"9".to_vec()).unwrap();
        serial.delete(b"y".to_vec()).unwrap();
        let serial_ws = serial.commit_tx().unwrap();
        assert_eq!(spec_ws.digest(), serial_ws.digest());
    }

    #[test]
    fn commit_final_produces_the_same_write_set() {
        let base = base_with(&[("a", "base")]);
        let fp = keys(&["a"]);
        let mut g1 = SpeculativeGroup::new(&base);
        let mut tx = g1.begin_tx(&fp);
        tx.put(b"a".to_vec(), b"x".to_vec()).unwrap();
        let ws_publish = tx.commit();
        let mut g2 = SpeculativeGroup::new(&base);
        let mut tx = g2.begin_tx(&fp);
        tx.put(b"a".to_vec(), b"x".to_vec()).unwrap();
        let ws_final = tx.commit_final();
        assert_eq!(ws_publish, ws_final);
    }

    #[test]
    #[should_panic(expected = "outside its declared footprint")]
    fn access_outside_footprint_fails_loudly() {
        let base = base_with(&[("a", "1")]);
        let mut group = SpeculativeGroup::new(&base);
        let fp = keys(&["a"]);
        let tx = group.begin_tx(&fp);
        let _ = tx.get(b"undeclared");
    }
}
