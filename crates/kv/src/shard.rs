//! Hash-partitioned sharding of the store.
//!
//! [`ShardedKvStore`] partitions the key space into `n` [`KvStore`] shards
//! by a stable hash of the key ([`shard_of`]). The shard layout is a
//! **local** choice, never a consensus-visible one: every externally
//! observable artifact — [`ShardedKvStore::digest`], checkpoints, write
//! sets, iteration order — is computed over the *merged* key order and is
//! byte-identical for any shard count, including 1. That is what lets each
//! replica pick a shard count matching its own parallelism while all
//! replicas (and the auditor, which replays on a plain single
//! [`KvStore`]) still agree on every digest.
//!
//! What sharding buys:
//!
//! * the execution stage can run conflict-free transaction groups
//!   speculatively (see [`crate::SpeculativeGroup`]) and merge their
//!   write sets per shard in batch order
//!   ([`ShardedKvStore::apply_write_set`]);
//! * batch rollback marks (Lemma 1) and checkpoints are maintained
//!   per shard but driven in lockstep, so the replica's rollback and
//!   checkpoint paths keep their single-store semantics.

use std::collections::BTreeMap;
use std::iter::Peekable;

use ia_ccf_crypto::Digest;

use crate::checkpoint::KvCheckpoint;
use crate::store::{KvError, KvStore};
use crate::write_set::TxWriteSet;
use crate::{Key, Value};

/// Stable key → shard routing: FNV-1a over the key bytes, reduced modulo
/// the shard count. Not consensus-critical (see the module docs), but kept
/// platform-stable anyway so a replica's own checkpoint/restore cycles
/// land keys where rollback marks expect them.
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be >= 1");
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A [`KvStore`] split into hash-partitioned shards. Mirrors the single-store
/// API; transactions may span shards (their write set is merged across
/// the touched shards), and batch marks / rollback / checkpoints are
/// driven on every shard in lockstep.
#[derive(Debug)]
pub struct ShardedKvStore {
    shards: Vec<KvStore>,
}

impl ShardedKvStore {
    /// An empty store with `shards` hash-partitioned shards (minimum 1).
    pub fn new(shards: usize) -> Self {
        ShardedKvStore { shards: (0..shards.max(1)).map(|_| KvStore::new()).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    pub fn shard_of_key(&self, key: &[u8]) -> usize {
        shard_of(key, self.shards.len())
    }

    /// One shard (tests and diagnostics).
    pub fn shard(&self, idx: usize) -> &KvStore {
        &self.shards[idx]
    }

    /// Total number of live keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Read a key (routed to its shard).
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.shards[self.shard_of_key(key)].get(key)
    }

    /// Iterate over all live entries in **global** key order (k-way merge
    /// of the per-shard cursors) — the canonical order digests use.
    pub fn iter(&self) -> MergedIter<'_> {
        MergedIter { cursors: self.shards.iter().map(|s| s.raw_iter().peekable()).collect() }
    }

    // ------------------------------------------------------------------
    // Transactions (span shards; the serial execution lane runs here)
    // ------------------------------------------------------------------

    /// Open a transaction on every shard.
    pub fn begin_tx(&mut self) -> Result<(), KvError> {
        if self.in_tx() {
            return Err(KvError::TransactionAlreadyOpen);
        }
        for s in &mut self.shards {
            s.begin_tx().expect("shards open transactions in lockstep");
        }
        Ok(())
    }

    /// Write `key = value` inside the open transaction.
    pub fn put(&mut self, key: Key, value: Value) -> Result<(), KvError> {
        let idx = self.shard_of_key(&key);
        self.shards[idx].put(key, value)
    }

    /// Delete `key` inside the open transaction.
    pub fn delete(&mut self, key: Key) -> Result<(), KvError> {
        let idx = self.shard_of_key(&key);
        self.shards[idx].delete(key)
    }

    /// Commit the open transaction, merging the per-shard write-set
    /// fragments into the transaction's canonical write set.
    pub fn commit_tx(&mut self) -> Result<TxWriteSet, KvError> {
        if !self.in_tx() {
            return Err(KvError::NoOpenTransaction);
        }
        let mut ws = TxWriteSet::new();
        for s in &mut self.shards {
            ws.absorb(s.commit_tx().expect("shards commit in lockstep"));
        }
        Ok(ws)
    }

    /// Abort the open transaction on every shard.
    pub fn abort_tx(&mut self) -> Result<(), KvError> {
        if !self.in_tx() {
            return Err(KvError::NoOpenTransaction);
        }
        for s in &mut self.shards {
            s.abort_tx().expect("shards abort in lockstep");
        }
        Ok(())
    }

    /// Whether a transaction is currently open.
    pub fn in_tx(&self) -> bool {
        self.shards[0].in_tx()
    }

    /// Apply one transaction's write set directly — the **ordered merge**
    /// step of sharded execution. The caller applies write sets in
    /// original batch order; each write routes to its shard, which records
    /// undo state so batch rollback still restores every shard.
    pub fn apply_write_set(&mut self, ws: TxWriteSet) {
        let n = self.shards.len();
        for (key, value) in ws {
            self.shards[shard_of(&key, n)].apply_one(key, value);
        }
    }

    /// Apply many transactions' write sets in order — the batched form of
    /// [`ShardedKvStore::apply_write_set`] — fanning the per-shard work
    /// out over `pool`. Each write is routed to its shard in original
    /// batch order first, then the per-shard op lists apply in parallel:
    /// a shard's op subsequence is identical to what the serial loop
    /// would feed it, so undo logs, rollback and digests cannot differ
    /// (shards are disjoint stores; cross-shard apply order was never
    /// observable). Falls back to the serial loop for a single shard, a
    /// size-1 pool, or batches too small to pay for a handoff.
    pub fn apply_write_sets(&mut self, pool: &ia_ccf_pool::WorkerPool, sets: Vec<TxWriteSet>) {
        const PAR_APPLY_MIN_OPS: usize = 64;
        let n = self.shards.len();
        let total: usize = sets.iter().map(TxWriteSet::len).sum();
        if n <= 1 || pool.threads() <= 1 || total < PAR_APPLY_MIN_OPS {
            for ws in sets {
                self.apply_write_set(ws);
            }
            return;
        }
        let mut per_shard: Vec<Vec<(Key, Option<Value>)>> = (0..n).map(|_| Vec::new()).collect();
        for ws in sets {
            for (key, value) in ws {
                per_shard[shard_of(&key, n)].push((key, value));
            }
        }
        pool.scope(|s| {
            for (shard, ops) in self.shards.iter_mut().zip(per_shard) {
                if ops.is_empty() {
                    continue;
                }
                s.spawn(move || {
                    for (key, value) in ops {
                        shard.apply_one(key, value);
                    }
                });
            }
        });
    }

    // ------------------------------------------------------------------
    // Batches (Lemma 1) — every shard carries the mark
    // ------------------------------------------------------------------

    /// Mark the start of batch `seq` on every shard.
    pub fn begin_batch(&mut self, seq: u64) {
        for s in &mut self.shards {
            s.begin_batch(seq);
        }
    }

    /// Roll back every batch with sequence number `>= seq` on every shard.
    pub fn rollback_to_batch(&mut self, seq: u64) -> Result<(), KvError> {
        // Marks are created in lockstep, so either every shard knows the
        // batch or none does. Probe the first shard before mutating any —
        // an unknown batch must leave the store untouched — and treat a
        // per-shard mismatch after that as corruption: a half-rolled-back
        // store must fail loudly, not drift.
        self.shards[0].rollback_to_batch(seq)?;
        for s in &mut self.shards[1..] {
            s.rollback_to_batch(seq).expect("shard batch marks diverged");
        }
        Ok(())
    }

    /// Release undo state for batches `<= seq` on every shard.
    pub fn release_batches_up_to(&mut self, seq: u64) {
        for s in &mut self.shards {
            s.release_batches_up_to(seq);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints — canonical (shard-count independent)
    // ------------------------------------------------------------------

    /// Deterministic digest over the merged contents. Byte-identical to
    /// [`KvStore::digest`] of an equivalent single store, for any shard
    /// count — checkpoint agreement must not depend on local layout (both
    /// delegate to the crate's single `digest_entries` definition).
    pub fn digest(&self) -> Digest {
        crate::digest_entries(self.len(), self.iter())
    }

    /// Snapshot the merged state into a (layout-independent) checkpoint.
    pub fn checkpoint(&self) -> KvCheckpoint {
        let entries: BTreeMap<Key, Value> =
            self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        KvCheckpoint::from_entries(entries)
    }

    /// Replace the contents from a checkpoint, routing each entry to its
    /// shard; clears all undo state.
    pub fn restore(&mut self, cp: &KvCheckpoint) {
        let n = self.shards.len();
        let mut parts: Vec<BTreeMap<Key, Value>> = (0..n).map(|_| BTreeMap::new()).collect();
        for (k, v) in cp.entries() {
            parts[shard_of(k, n)].insert(k.clone(), v.clone());
        }
        for (shard, part) in self.shards.iter_mut().zip(parts) {
            shard.set_entries(part);
        }
    }
}

/// K-way merge over the per-shard cursors; shards partition the key space,
/// so the merge is a strict global key order with no duplicates.
pub struct MergedIter<'a> {
    cursors: Vec<Peekable<std::collections::btree_map::Iter<'a, Key, Value>>>,
}

impl<'a> Iterator for MergedIter<'a> {
    type Item = (&'a Key, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, &'a Key)> = None;
        for i in 0..self.cursors.len() {
            if let Some(&(k, _)) = self.cursors[i].peek() {
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        best.and_then(|(i, _)| self.cursors[i].next())
    }
}

/// [`crate::KvAccess`] over the whole sharded store: the serial execution
/// lane (governance, system transactions, apps without key hints) runs
/// against this exactly like against a single store.
impl crate::KvAccess for ShardedKvStore {
    fn get(&self, key: &[u8]) -> Option<&Value> {
        ShardedKvStore::get(self, key)
    }

    fn put(&mut self, key: Key, value: Value) -> Result<(), KvError> {
        ShardedKvStore::put(self, key, value)
    }

    fn delete(&mut self, key: Key) -> Result<(), KvError> {
        ShardedKvStore::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        s.as_bytes().to_vec()
    }
    fn v(s: &str) -> Value {
        s.as_bytes().to_vec()
    }

    /// Drive a sharded and a single store through the same script and
    /// assert every observable artifact matches.
    fn mirror(shards: usize, script: impl Fn(&mut dyn crate::KvAccess)) -> (ShardedKvStore, KvStore) {
        let mut sharded = ShardedKvStore::new(shards);
        let mut single = KvStore::new();
        sharded.begin_tx().unwrap();
        single.begin_tx().unwrap();
        script(&mut sharded);
        script(&mut single);
        let ws_a = sharded.commit_tx().unwrap();
        let ws_b = single.commit_tx().unwrap();
        assert_eq!(ws_a, ws_b, "write sets must be layout-independent");
        (sharded, single)
    }

    #[test]
    fn digest_and_checkpoint_are_shard_count_independent() {
        for shards in [1, 2, 3, 8, 17] {
            let (sharded, single) = mirror(shards, |kv| {
                for i in 0..50u32 {
                    kv.put(i.to_le_bytes().to_vec(), v(&format!("val{i}"))).unwrap();
                }
                kv.delete(7u32.to_le_bytes().to_vec()).unwrap();
            });
            assert_eq!(sharded.digest(), single.digest(), "{shards} shards");
            assert_eq!(sharded.checkpoint().digest(), single.checkpoint().digest());
            assert_eq!(sharded.len(), single.len());
            let merged: Vec<_> = sharded.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            let flat: Vec<_> = single.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(merged, flat, "merged iteration must be in global key order");
        }
    }

    #[test]
    fn shards_actually_spread_keys() {
        let mut kv = ShardedKvStore::new(4);
        kv.begin_tx().unwrap();
        for i in 0..64u64 {
            kv.put(i.to_le_bytes().to_vec(), v("x")).unwrap();
        }
        kv.commit_tx().unwrap();
        let populated = (0..4).filter(|&i| !kv.shard(i).is_empty()).count();
        assert!(populated >= 2, "64 keys landed in {populated} shard(s)");
    }

    #[test]
    fn batch_rollback_restores_every_shard() {
        let mut kv = ShardedKvStore::new(4);
        kv.begin_batch(1);
        kv.begin_tx().unwrap();
        for i in 0..16u64 {
            kv.put(i.to_le_bytes().to_vec(), v("one")).unwrap();
        }
        kv.commit_tx().unwrap();
        let digest_after_1 = kv.digest();

        kv.begin_batch(2);
        kv.begin_tx().unwrap();
        for i in 0..16u64 {
            kv.put(i.to_le_bytes().to_vec(), v("two")).unwrap();
        }
        kv.delete(3u64.to_le_bytes().to_vec()).unwrap();
        kv.commit_tx().unwrap();
        assert_ne!(kv.digest(), digest_after_1);

        kv.rollback_to_batch(2).unwrap();
        assert_eq!(kv.digest(), digest_after_1, "rollback must restore all shards");
        assert_eq!(kv.rollback_to_batch(2), Err(KvError::UnknownBatch));
    }

    #[test]
    fn apply_write_set_routes_and_is_rollbackable() {
        let mut kv = ShardedKvStore::new(4);
        kv.begin_batch(1);
        kv.begin_tx().unwrap();
        kv.put(k("keep"), v("old")).unwrap();
        kv.put(k("gone"), v("x")).unwrap();
        kv.commit_tx().unwrap();
        let before = kv.digest();

        kv.begin_batch(2);
        let mut single = KvStore::new();
        single.begin_tx().unwrap();
        single.put(k("keep"), v("new")).unwrap();
        single.delete(k("gone")).unwrap();
        single.put(k("fresh"), v("y")).unwrap();
        let ws = single.commit_tx().unwrap();
        kv.apply_write_set(ws);
        assert_eq!(kv.get(b"keep"), Some(&v("new")));
        assert_eq!(kv.get(b"gone"), None);
        assert_eq!(kv.get(b"fresh"), Some(&v("y")));

        kv.rollback_to_batch(2).unwrap();
        assert_eq!(kv.digest(), before, "merged writes must be undone by batch rollback");
    }

    #[test]
    fn parallel_apply_write_sets_matches_serial_and_rolls_back() {
        // Build a pile of write sets big enough to clear the parallel
        // threshold, apply them serially and via the pool, and require
        // identical digests — including after batch rollback.
        let make_sets = || -> Vec<TxWriteSet> {
            (0..8)
                .map(|t| {
                    let mut single = KvStore::new();
                    single.begin_tx().unwrap();
                    for i in 0..16u64 {
                        let key = format!("k{}", (t * 16 + i) % 96).into_bytes();
                        single.put(key, v(&format!("t{t}i{i}"))).unwrap();
                    }
                    if t == 5 {
                        single.delete(k("k3")).unwrap();
                    }
                    single.commit_tx().unwrap()
                })
                .collect()
        };
        let seed = |kv: &mut ShardedKvStore| {
            kv.begin_batch(1);
            kv.begin_tx().unwrap();
            for i in 0..96u64 {
                kv.put(format!("k{i}").into_bytes(), v("seed")).unwrap();
            }
            kv.commit_tx().unwrap();
        };

        let mut serial = ShardedKvStore::new(4);
        seed(&mut serial);
        serial.begin_batch(2);
        for ws in make_sets() {
            serial.apply_write_set(ws);
        }
        let want = serial.digest();
        serial.rollback_to_batch(2).unwrap();
        let want_rolled_back = serial.digest();

        for threads in [1, 2, 8] {
            let pool = ia_ccf_pool::WorkerPool::new(threads);
            let mut kv = ShardedKvStore::new(4);
            seed(&mut kv);
            kv.begin_batch(2);
            kv.apply_write_sets(&pool, make_sets());
            assert_eq!(kv.digest(), want, "{threads} pool threads");
            kv.rollback_to_batch(2).unwrap();
            assert_eq!(kv.digest(), want_rolled_back, "{threads} pool threads, rolled back");
        }
    }

    #[test]
    fn restore_partitions_checkpoint_across_shards() {
        let (sharded, single) = mirror(8, |kv| {
            for i in 0..40u32 {
                kv.put(i.to_le_bytes().to_vec(), v(&format!("{i}"))).unwrap();
            }
        });
        let cp = single.checkpoint();
        let mut fresh = ShardedKvStore::new(3);
        fresh.restore(&cp);
        assert_eq!(fresh.digest(), sharded.digest());
        assert_eq!(fresh.len(), 40);
    }

    #[test]
    fn tx_misuse_errors_match_single_store() {
        let mut kv = ShardedKvStore::new(2);
        assert_eq!(kv.put(k("a"), v("1")), Err(KvError::NoOpenTransaction));
        assert_eq!(kv.commit_tx().unwrap_err(), KvError::NoOpenTransaction);
        assert_eq!(kv.abort_tx().unwrap_err(), KvError::NoOpenTransaction);
        kv.begin_tx().unwrap();
        assert_eq!(kv.begin_tx(), Err(KvError::TransactionAlreadyOpen));
        kv.put(k("a"), v("1")).unwrap();
        kv.abort_tx().unwrap();
        assert_eq!(kv.get(b"a"), None);
    }

    #[test]
    fn shard_of_is_stable() {
        // Pin the routing function: a silent change would re-route keys
        // under existing rollback marks on live replicas.
        assert_eq!(shard_of(b"", 1), 0);
        let a = shard_of(b"account-1", 8);
        let b = shard_of(b"account-1", 8);
        assert_eq!(a, b);
        assert!(a < 8);
    }
}
