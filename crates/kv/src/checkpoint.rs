//! Key-value store checkpoints.
//!
//! §3.4: "Checkpoints include the key-value store and the Merkle tree M's
//! newest leaf, root, and the connecting branches." This module holds the
//! KV half; the Merkle frontier lives in `ia-ccf-merkle` and the two are
//! combined by the replica's checkpoint record in `ia-ccf-core`.

use std::collections::BTreeMap;

use ia_ccf_crypto::Digest;
use serde::{Deserialize, Serialize};

use crate::{Key, Value};

/// A point-in-time snapshot of the store with its digest.
///
/// Replicas create one every C sequence numbers; auditors load one to replay
/// a ledger fragment from `s_{C0}` (§4.1) instead of from genesis.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct KvCheckpoint {
    digest: Digest,
    entries: BTreeMap<Key, Value>,
}

impl KvCheckpoint {
    /// Build a checkpoint from a full entry map, computing its digest.
    pub fn from_entries(entries: BTreeMap<Key, Value>) -> Self {
        let digest = digest_of(&entries);
        KvCheckpoint { digest, entries }
    }

    /// The checkpoint digest `d_C` referenced by pre-prepares and receipts.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// The snapshotted entries.
    pub fn entries(&self) -> &BTreeMap<Key, Value> {
        &self.entries
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty (genesis checkpoint).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-derive the digest from the contents and compare — used by
    /// auditors to detect checkpoints whose advertised digest lies about
    /// their contents.
    pub fn verify_integrity(&self) -> bool {
        digest_of(&self.entries) == self.digest
    }

    /// Forge a checkpoint whose advertised digest does not match its
    /// contents. Only for fault-injection tests of the auditor.
    pub fn forge_with_digest(entries: BTreeMap<Key, Value>, digest: Digest) -> Self {
        KvCheckpoint { digest, entries }
    }

    /// Serialize for checkpoint transfer:
    /// `digest || entry-count || (key-len, key, value-len, value)*`.
    /// The advertised digest travels with the entries so the receiver can
    /// run [`KvCheckpoint::verify_integrity`] before trusting either.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self
            .entries
            .iter()
            .map(|(k, v)| 8 + k.len() + v.len())
            .sum();
        let mut out = Vec::with_capacity(32 + 8 + payload);
        out.extend_from_slice(self.digest.as_ref());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    /// Decode [`KvCheckpoint::to_bytes`]. Length prefixes are checked
    /// against the remaining input before any allocation, so hostile
    /// counts cannot balloon memory; truncated or trailing bytes are
    /// rejected. The decoded checkpoint's digest is whatever the bytes
    /// advertise — callers must still [`KvCheckpoint::verify_integrity`]
    /// and compare against the digest agreed through the protocol.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (digest, rest) = bytes.split_first_chunk::<32>()?;
        let digest = Digest(*digest);
        let (n_bytes, mut rest) = rest.split_first_chunk::<8>()?;
        let n = u64::from_le_bytes(*n_bytes);
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let (k, r) = take_chunk(rest)?;
            let (v, r) = take_chunk(r)?;
            rest = r;
            entries.insert(k.to_vec(), v.to_vec());
        }
        if !rest.is_empty() {
            return None;
        }
        Some(KvCheckpoint { digest, entries })
    }

    /// Decode and integrity-check in one step: the loading path for
    /// checkpoints read back from untrusted bytes (a disk file, a
    /// transfer payload), where a decodable snapshot whose contents do
    /// not reproduce its advertised digest must read as absent. The
    /// caller still compares the digest against the one agreed through
    /// the protocol — integrity says the bytes are self-consistent, not
    /// that they are the *agreed* snapshot.
    pub fn from_bytes_verified(bytes: &[u8]) -> Option<Self> {
        let cp = Self::from_bytes(bytes)?;
        cp.verify_integrity().then_some(cp)
    }
}

/// Split one `u32`-length-prefixed chunk off `bytes`.
fn take_chunk(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let (len_bytes, rest) = bytes.split_first_chunk::<4>()?;
    let len = u32::from_le_bytes(*len_bytes) as usize;
    if rest.len() < len {
        return None;
    }
    Some(rest.split_at(len))
}

fn digest_of(entries: &BTreeMap<Key, Value>) -> Digest {
    crate::digest_entries(entries.len(), entries.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    #[test]
    fn checkpoint_digest_matches_store_digest() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        kv.commit_tx().unwrap();
        let cp = kv.checkpoint();
        assert_eq!(cp.digest(), kv.digest());
        assert!(cp.verify_integrity());
    }

    #[test]
    fn forged_checkpoint_fails_integrity() {
        let cp = KvCheckpoint::forge_with_digest(
            BTreeMap::from([(b"a".to_vec(), b"1".to_vec())]),
            Digest::zero(),
        );
        assert!(!cp.verify_integrity());
    }

    #[test]
    fn genesis_checkpoint_is_empty() {
        let cp = KvCheckpoint::from_entries(BTreeMap::new());
        assert!(cp.is_empty());
        assert!(cp.verify_integrity());
    }
}
