//! Key-value store checkpoints.
//!
//! §3.4: "Checkpoints include the key-value store and the Merkle tree M's
//! newest leaf, root, and the connecting branches." This module holds the
//! KV half; the Merkle frontier lives in `ia-ccf-merkle` and the two are
//! combined by the replica's checkpoint record in `ia-ccf-core`.

use std::collections::BTreeMap;

use ia_ccf_crypto::Digest;
use serde::{Deserialize, Serialize};

use crate::{Key, Value};

/// A point-in-time snapshot of the store with its digest.
///
/// Replicas create one every C sequence numbers; auditors load one to replay
/// a ledger fragment from `s_{C0}` (§4.1) instead of from genesis.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct KvCheckpoint {
    digest: Digest,
    entries: BTreeMap<Key, Value>,
}

impl KvCheckpoint {
    /// Build a checkpoint from a full entry map, computing its digest.
    pub fn from_entries(entries: BTreeMap<Key, Value>) -> Self {
        let digest = digest_of(&entries);
        KvCheckpoint { digest, entries }
    }

    /// The checkpoint digest `d_C` referenced by pre-prepares and receipts.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// The snapshotted entries.
    pub fn entries(&self) -> &BTreeMap<Key, Value> {
        &self.entries
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty (genesis checkpoint).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-derive the digest from the contents and compare — used by
    /// auditors to detect checkpoints whose advertised digest lies about
    /// their contents.
    pub fn verify_integrity(&self) -> bool {
        digest_of(&self.entries) == self.digest
    }

    /// Forge a checkpoint whose advertised digest does not match its
    /// contents. Only for fault-injection tests of the auditor.
    pub fn forge_with_digest(entries: BTreeMap<Key, Value>, digest: Digest) -> Self {
        KvCheckpoint { digest, entries }
    }
}

fn digest_of(entries: &BTreeMap<Key, Value>) -> Digest {
    crate::digest_entries(entries.len(), entries.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvStore;

    #[test]
    fn checkpoint_digest_matches_store_digest() {
        let mut kv = KvStore::new();
        kv.begin_tx().unwrap();
        kv.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        kv.commit_tx().unwrap();
        let cp = kv.checkpoint();
        assert_eq!(cp.digest(), kv.digest());
        assert!(cp.verify_integrity());
    }

    #[test]
    fn forged_checkpoint_fails_integrity() {
        let cp = KvCheckpoint::forge_with_digest(
            BTreeMap::from([(b"a".to_vec(), b"1".to_vec())]),
            Digest::zero(),
        );
        assert!(!cp.verify_integrity());
    }

    #[test]
    fn genesis_checkpoint_is_empty() {
        let cp = KvCheckpoint::from_entries(BTreeMap::new());
        assert!(cp.is_empty());
        assert!(cp.verify_integrity());
    }
}
