//! The SmallBank benchmark (§6) and a simple bank app for the audit
//! examples.
//!
//! "We use the SmallBank benchmark, which models a bank with 500K customer
//! accounts. Clients randomly execute 5 transaction types: deposit,
//! transfer, and withdraw funds; check account balances; and amalgamate
//! accounts." Each account has a checking and a savings balance; the five
//! procedures below match the classic SmallBank operations under the
//! paper's names.

use ia_ccf_core::app::{App, AppError};
use ia_ccf_kv::{Key, KvAccess, KvStore};
use ia_ccf_types::{ClientId, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deposit into savings (`TransactSavings`).
pub const DEPOSIT: ProcId = ProcId(10);
/// Transfer between accounts (`SendPayment`, checking → checking).
pub const TRANSFER: ProcId = ProcId(11);
/// Withdraw from checking (`WriteCheck`).
pub const WITHDRAW: ProcId = ProcId(12);
/// Read both balances (`Balance`).
pub const BALANCE: ProcId = ProcId(13);
/// Move savings+checking of one account into another (`Amalgamate`).
pub const AMALGAMATE: ProcId = ProcId(14);
/// A no-op procedure for the "empty requests" rows of Tab. 3.
pub const NOOP: ProcId = ProcId(15);

/// All SmallBank procedure ids (for app registry wiring).
pub const ALL_PROCS: [ProcId; 6] = [DEPOSIT, TRANSFER, WITHDRAW, BALANCE, AMALGAMATE, NOOP];

/// An account's balances, stored as the value under the account key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Balances {
    /// Checking balance, cents.
    pub checking: i64,
    /// Savings balance, cents.
    pub savings: i64,
}

impl Balances {
    /// Serialize.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.checking.to_le_bytes());
        out.extend_from_slice(&self.savings.to_le_bytes());
        out
    }

    /// Deserialize (missing/short values read as zero).
    pub fn from_bytes(bytes: &[u8]) -> Balances {
        if bytes.len() < 16 {
            return Balances::default();
        }
        Balances {
            checking: i64::from_le_bytes(bytes[..8].try_into().expect("len checked")),
            savings: i64::from_le_bytes(bytes[8..16].try_into().expect("len checked")),
        }
    }
}

/// Key for an account id.
pub fn account_key(account: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(b'a');
    k.extend_from_slice(&account.to_le_bytes());
    k
}

fn read_account(kv: &dyn KvAccess, account: u64) -> Balances {
    kv.get(&account_key(account)).map(|v| Balances::from_bytes(v)).unwrap_or_default()
}

fn write_account(kv: &mut dyn KvAccess, account: u64, b: Balances) -> Result<(), AppError> {
    kv.put(account_key(account), b.to_bytes()).map_err(|e| AppError(e.to_string()))
}

fn arg_u64(args: &[u8], at: usize) -> Result<u64, AppError> {
    args.get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| AppError("short args".into()))
}

fn arg_i64(args: &[u8], at: usize) -> Result<i64, AppError> {
    args.get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(i64::from_le_bytes)
        .ok_or_else(|| AppError("short args".into()))
}

/// The SmallBank stored procedures.
#[derive(Debug, Default, Clone, Copy)]
pub struct SmallBankApp;

impl App for SmallBankApp {
    fn execute(
        &self,
        kv: &mut dyn KvAccess,
        proc: ProcId,
        args: &[u8],
        _client: ClientId,
    ) -> Result<Vec<u8>, AppError> {
        match proc {
            DEPOSIT => {
                let account = arg_u64(args, 0)?;
                let amount = arg_i64(args, 8)?;
                if amount < 0 {
                    return Err(AppError("negative deposit".into()));
                }
                let mut b = read_account(kv, account);
                b.savings += amount;
                write_account(kv, account, b)?;
                Ok(b.savings.to_le_bytes().to_vec())
            }
            TRANSFER => {
                let from = arg_u64(args, 0)?;
                let to = arg_u64(args, 8)?;
                let amount = arg_i64(args, 16)?;
                if amount < 0 {
                    return Err(AppError("negative transfer".into()));
                }
                if from == to {
                    return Err(AppError("self transfer".into()));
                }
                let mut fb = read_account(kv, from);
                if fb.checking < amount {
                    return Err(AppError("insufficient funds".into()));
                }
                let mut tb = read_account(kv, to);
                fb.checking -= amount;
                tb.checking += amount;
                write_account(kv, from, fb)?;
                write_account(kv, to, tb)?;
                Ok(fb.checking.to_le_bytes().to_vec())
            }
            WITHDRAW => {
                let account = arg_u64(args, 0)?;
                let amount = arg_i64(args, 8)?;
                if amount < 0 {
                    return Err(AppError("negative withdrawal".into()));
                }
                let mut b = read_account(kv, account);
                // SmallBank's WriteCheck allows overdraft with a penalty.
                let penalty = if b.checking < amount { 100 } else { 0 };
                b.checking -= amount + penalty;
                write_account(kv, account, b)?;
                Ok(b.checking.to_le_bytes().to_vec())
            }
            BALANCE => {
                let account = arg_u64(args, 0)?;
                let b = read_account(kv, account);
                Ok(b.to_bytes())
            }
            AMALGAMATE => {
                let from = arg_u64(args, 0)?;
                let to = arg_u64(args, 8)?;
                if from == to {
                    return Err(AppError("self amalgamate".into()));
                }
                let fb = read_account(kv, from);
                let mut tb = read_account(kv, to);
                tb.checking += fb.checking + fb.savings;
                write_account(kv, from, Balances::default())?;
                write_account(kv, to, tb)?;
                Ok(tb.checking.to_le_bytes().to_vec())
            }
            NOOP => Ok(Vec::new()),
            other => Err(AppError(format!("smallbank: unknown proc {other:?}"))),
        }
    }

    /// Every SmallBank procedure touches exactly the accounts named in its
    /// arguments, so the footprint is exact. Calls whose arguments fail to
    /// parse error out before any store access: empty footprint.
    fn key_hints(&self, proc: ProcId, args: &[u8], _client: ClientId) -> Option<Vec<Key>> {
        Some(match proc {
            DEPOSIT | WITHDRAW | BALANCE => match arg_u64(args, 0) {
                Ok(account) => vec![account_key(account)],
                Err(_) => Vec::new(),
            },
            TRANSFER | AMALGAMATE => match (arg_u64(args, 0), arg_u64(args, 8)) {
                (Ok(from), Ok(to)) => vec![account_key(from), account_key(to)],
                _ => Vec::new(),
            },
            // NOOP and unknown procedures never touch the store.
            _ => Vec::new(),
        })
    }
}

/// Pre-populate `kv` with `accounts` accounts holding `initial` in both
/// balances (run inside a transaction by the harness, or standalone here).
pub fn populate(kv: &mut KvStore, accounts: u64, initial: i64) {
    let standalone = !kv.in_tx();
    if standalone {
        kv.begin_tx().expect("no open tx");
    }
    for a in 0..accounts {
        kv.put(account_key(a), Balances { checking: initial, savings: initial }.to_bytes())
            .expect("tx open");
    }
    if standalone {
        kv.commit_tx().expect("tx open");
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadOp {
    /// Stored procedure to call.
    pub proc: ProcId,
    /// Serialized arguments.
    pub args: Vec<u8>,
}

/// Size of the hot account set conflict-skewed workloads draw from.
pub const HOT_ACCOUNTS: u64 = 4;

/// The SmallBank request mix: uniform choice over the five types (§6).
/// Accounts are drawn uniformly, or — with a conflict-skew knob — from a
/// small hot set with probability `skew_pct`%, concentrating footprint
/// overlap so sharded execution's conflict handling is measurable from
/// fully uncontended (0%) to fully contended (100%).
pub struct Workload {
    rng: StdRng,
    accounts: u64,
    skew_pct: u8,
    hot: u64,
}

impl Workload {
    /// A deterministic uniform workload over `accounts` accounts.
    /// Byte-identical to the pre-skew generator (skew 0 consumes no extra
    /// randomness).
    pub fn new(accounts: u64, seed: u64) -> Self {
        Self::with_skew(accounts, seed, 0)
    }

    /// A workload where each account draw hits the hot set
    /// ([`HOT_ACCOUNTS`]) with probability `skew_pct`% (0–100).
    pub fn with_skew(accounts: u64, seed: u64, skew_pct: u8) -> Self {
        assert!(skew_pct <= 100, "skew is a percentage");
        Workload {
            rng: StdRng::seed_from_u64(seed),
            accounts,
            skew_pct,
            hot: accounts.clamp(1, HOT_ACCOUNTS),
        }
    }

    fn pick_account(&mut self) -> u64 {
        if self.skew_pct > 0 && self.rng.gen_range(0..100u8) < self.skew_pct {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(0..self.accounts)
        }
    }

    /// A counterparty distinct from `from` (transfer/amalgamate target).
    fn pick_counterparty(&mut self, from: u64) -> u64 {
        if self.skew_pct > 0 && self.hot > 1 && self.rng.gen_range(0..100u8) < self.skew_pct {
            let to = self.rng.gen_range(0..self.hot);
            if to == from {
                (to + 1) % self.hot
            } else {
                to
            }
        } else {
            (from + 1 + self.rng.gen_range(0..self.accounts - 1)) % self.accounts
        }
    }

    /// The next operation.
    pub fn next_op(&mut self) -> WorkloadOp {
        let account = self.pick_account();
        let amount: i64 = self.rng.gen_range(1..100);
        match self.rng.gen_range(0..5u8) {
            0 => WorkloadOp {
                proc: DEPOSIT,
                args: [account.to_le_bytes(), amount.to_le_bytes()].concat(),
            },
            1 => {
                let to = self.pick_counterparty(account);
                WorkloadOp {
                    proc: TRANSFER,
                    args: [account.to_le_bytes(), to.to_le_bytes(), amount.to_le_bytes()]
                        .concat(),
                }
            }
            2 => WorkloadOp {
                proc: WITHDRAW,
                args: [account.to_le_bytes(), amount.to_le_bytes()].concat(),
            },
            3 => WorkloadOp { proc: BALANCE, args: account.to_le_bytes().to_vec() },
            _ => {
                let to = self.pick_counterparty(account);
                WorkloadOp {
                    proc: AMALGAMATE,
                    args: [account.to_le_bytes(), to.to_le_bytes()].concat(),
                }
            }
        }
    }

    /// An empty-request op (Tab. 3 row (h)).
    pub fn noop() -> WorkloadOp {
        WorkloadOp { proc: NOOP, args: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(accounts: u64) -> KvStore {
        let mut kv = KvStore::new();
        populate(&mut kv, accounts, 1000);
        kv
    }

    fn exec(kv: &mut KvStore, proc: ProcId, args: &[u8]) -> Result<Vec<u8>, AppError> {
        kv.begin_tx().unwrap();
        let r = SmallBankApp.execute(kv, proc, args, ClientId(1));
        match &r {
            Ok(_) => {
                kv.commit_tx().unwrap();
            }
            Err(_) => {
                kv.abort_tx().unwrap();
            }
        }
        r
    }

    #[test]
    fn deposit_increases_savings() {
        let mut kv = bank(2);
        let out =
            exec(&mut kv, DEPOSIT, &[0u64.to_le_bytes(), 250i64.to_le_bytes()].concat()).unwrap();
        assert_eq!(i64::from_le_bytes(out.try_into().unwrap()), 1250);
        assert_eq!(read_account(&kv, 0).savings, 1250);
        assert_eq!(read_account(&kv, 0).checking, 1000);
    }

    #[test]
    fn transfer_moves_checking_and_conserves_total() {
        let mut kv = bank(3);
        exec(
            &mut kv,
            TRANSFER,
            &[0u64.to_le_bytes(), 1u64.to_le_bytes(), 400i64.to_le_bytes()].concat(),
        )
        .unwrap();
        assert_eq!(read_account(&kv, 0).checking, 600);
        assert_eq!(read_account(&kv, 1).checking, 1400);
        let total: i64 = (0..3).map(|a| read_account(&kv, a).checking).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn transfer_insufficient_funds_fails_and_rolls_back() {
        let mut kv = bank(2);
        let err = exec(
            &mut kv,
            TRANSFER,
            &[0u64.to_le_bytes(), 1u64.to_le_bytes(), 5000i64.to_le_bytes()].concat(),
        )
        .unwrap_err();
        assert!(err.0.contains("insufficient"));
        assert_eq!(read_account(&kv, 0).checking, 1000);
        assert_eq!(read_account(&kv, 1).checking, 1000);
    }

    #[test]
    fn withdraw_overdraft_applies_penalty() {
        let mut kv = bank(1);
        exec(&mut kv, WITHDRAW, &[0u64.to_le_bytes(), 1200i64.to_le_bytes()].concat()).unwrap();
        assert_eq!(read_account(&kv, 0).checking, 1000 - 1200 - 100);
    }

    #[test]
    fn balance_reads_both() {
        let mut kv = bank(1);
        let out = exec(&mut kv, BALANCE, &0u64.to_le_bytes()).unwrap();
        let b = Balances::from_bytes(&out);
        assert_eq!(b, Balances { checking: 1000, savings: 1000 });
    }

    #[test]
    fn amalgamate_empties_source() {
        let mut kv = bank(2);
        exec(&mut kv, AMALGAMATE, &[0u64.to_le_bytes(), 1u64.to_le_bytes()].concat()).unwrap();
        assert_eq!(read_account(&kv, 0), Balances::default());
        assert_eq!(read_account(&kv, 1).checking, 1000 + 2000);
        assert_eq!(read_account(&kv, 1).savings, 1000);
    }

    #[test]
    fn self_operations_rejected() {
        let mut kv = bank(2);
        assert!(exec(
            &mut kv,
            TRANSFER,
            &[0u64.to_le_bytes(), 0u64.to_le_bytes(), 1i64.to_le_bytes()].concat()
        )
        .is_err());
        assert!(
            exec(&mut kv, AMALGAMATE, &[1u64.to_le_bytes(), 1u64.to_le_bytes()].concat()).is_err()
        );
    }

    #[test]
    fn workload_is_deterministic_and_varied() {
        let mut a = Workload::new(100, 42);
        let mut b = Workload::new(100, 42);
        let ops_a: Vec<WorkloadOp> = (0..50).map(|_| a.next_op()).collect();
        let ops_b: Vec<WorkloadOp> = (0..50).map(|_| b.next_op()).collect();
        assert_eq!(ops_a, ops_b);
        let kinds: std::collections::HashSet<u16> = ops_a.iter().map(|o| o.proc.0).collect();
        assert!(kinds.len() >= 4, "mix covers most procedures: {kinds:?}");
    }

    #[test]
    fn workload_executes_cleanly_at_scale() {
        let mut kv = bank(50);
        let mut w = Workload::new(50, 7);
        let mut ok = 0;
        for _ in 0..500 {
            let op = w.next_op();
            if exec(&mut kv, op.proc, &op.args).is_ok() {
                ok += 1;
            }
        }
        // Most operations succeed (failures are insufficient-funds only).
        assert!(ok > 400, "ok = {ok}");
    }

    #[test]
    fn key_hints_cover_exactly_the_touched_accounts() {
        let app = SmallBankApp;
        let dep_args = [3u64.to_le_bytes(), 10i64.to_le_bytes()].concat();
        assert_eq!(
            app.key_hints(DEPOSIT, &dep_args, ClientId(1)),
            Some(vec![account_key(3)])
        );
        let xfer_args = [1u64.to_le_bytes(), 2u64.to_le_bytes(), 5i64.to_le_bytes()].concat();
        assert_eq!(
            app.key_hints(TRANSFER, &xfer_args, ClientId(1)),
            Some(vec![account_key(1), account_key(2)])
        );
        assert_eq!(app.key_hints(NOOP, &[], ClientId(1)), Some(Vec::new()));
        // Unparseable args error before any store access: empty footprint.
        assert_eq!(app.key_hints(TRANSFER, &[1, 2, 3], ClientId(1)), Some(Vec::new()));
    }

    #[test]
    fn skewed_workload_concentrates_on_hot_accounts() {
        let mut hot = Workload::with_skew(10_000, 11, 100);
        for _ in 0..200 {
            let op = hot.next_op();
            let account = u64::from_le_bytes(op.args[..8].try_into().unwrap());
            assert!(account < HOT_ACCOUNTS, "skew 100 must stay in the hot set");
            if op.proc == TRANSFER || op.proc == AMALGAMATE {
                let to = u64::from_le_bytes(op.args[8..16].try_into().unwrap());
                assert!(to < HOT_ACCOUNTS);
                assert_ne!(to, account, "counterparty must differ");
            }
        }
        // skew 0 must reproduce the historical uniform stream exactly.
        let mut a = Workload::new(100, 42);
        let mut b = Workload::with_skew(100, 42, 0);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
        // Intermediate skew mixes hot and cold draws.
        let mut mid = Workload::with_skew(10_000, 13, 50);
        let accounts: Vec<u64> = (0..300)
            .map(|_| u64::from_le_bytes(mid.next_op().args[..8].try_into().unwrap()))
            .collect();
        assert!(accounts.iter().any(|a| *a < HOT_ACCOUNTS));
        assert!(accounts.iter().any(|a| *a >= HOT_ACCOUNTS));
    }

    #[test]
    fn balances_serialization_roundtrip() {
        let b = Balances { checking: -5, savings: i64::MAX };
        assert_eq!(Balances::from_bytes(&b.to_bytes()), b);
        assert_eq!(Balances::from_bytes(&[]), Balances::default());
    }
}
