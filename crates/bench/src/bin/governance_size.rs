//! §6.4: governance sub-ledger sizes.
//!
//! The paper: a governance receipt is 623 B (f = 1) or 1 565 B (f = 3);
//! clients additionally store the request and response. Governance is
//! rare, so the client-held sub-ledger stays small. We measure our
//! receipt encoding for both fault levels and project sub-ledger growth
//! for a year of monthly reconfigurations.

use bench::{emit, Row};
use ia_ccf_crypto::hash_bytes;
use ia_ccf_types::config::testutil::test_config;
use ia_ccf_types::receipt::testutil::make_tx_receipts;
use ia_ccf_types::{
    Digest, GovAction, LedgerIdx, Request, RequestAction, SeqNum, SignedRequest, TxResult, View,
    Wire,
};

fn gov_receipt_size(n: usize) -> (usize, usize) {
    let (config, replica_keys, member_keys) = test_config(n);
    // A realistic vote transaction.
    let vote = SignedRequest::sign(
        Request {
            action: RequestAction::Governance(GovAction::Vote { proposal_id: 7, approve: true }),
            client: ia_ccf_types::ClientId(2),
            gt_hash: hash_bytes(b"gt"),
            min_index: LedgerIdx(0),
            req_id: 9,
        },
        &member_keys[2],
    );
    let result = TxResult {
        ok: true,
        output: ia_ccf_governance::chain::GOV_OUTPUT_RECORDED.to_vec(),
        write_set_digest: hash_bytes(b"gov-ws"),
    };
    let receipt = make_tx_receipts(
        &config,
        &replica_keys,
        View(0),
        SeqNum(42),
        hash_bytes(b"m"),
        LedgerIdx(0),
        Digest::zero(),
        &[(vote.digest(), LedgerIdx(77), result)],
    )
    .remove(0);
    (receipt.wire_len(), vote.wire_len())
}

fn main() {
    let (r1, q1) = gov_receipt_size(4); // f = 1
    let (r3, q3) = gov_receipt_size(10); // f = 3

    // A reconfiguration contributes: propose + (threshold) votes + one
    // boundary receipt; project a year of monthly reconfigurations.
    let per_reconfig_f1 = (r1 + q1) * 4 + r1;
    let per_reconfig_f3 = (r3 + q3) * 7 + r3;

    let rows = vec![
        Row::new("governance receipt", &[("f1_B", r1 as f64), ("f3_B", r3 as f64)]),
        Row::new("vote request", &[("f1_B", q1 as f64), ("f3_B", q3 as f64)]),
        Row::new(
            "sub-ledger per reconfiguration",
            &[("f1_B", per_reconfig_f1 as f64), ("f3_B", per_reconfig_f3 as f64)],
        ),
        Row::new(
            "sub-ledger, 12 reconfigs/yr",
            &[
                ("f1_KB", (12 * per_reconfig_f1) as f64 / 1024.0),
                ("f3_KB", (12 * per_reconfig_f3) as f64 / 1024.0),
            ],
        ),
    ];
    emit("governance_size", "§6.4: governance sub-ledger sizes", &rows);
    println!("\npaper: receipt 623 B (f=1) / 1565 B (f=3); storage/verification overhead low");
    println!("shape check: f=3 receipt ≈ 2.5x f=1 (Σs and Ks grow with the quorum)");
}
