//! Tab. 1: Size of ledger entries (SmallBank), f = 1 and f = 3.
//!
//! The paper reports: transaction 216–358 B, pre-prepare 277 B, prepare
//! evidence 298/894 B, nonces 32/64 B. Our encoding differs in detail
//! (explicit evidence_seq, 16-byte nonces) but the *shape* must hold:
//! pre-prepare size independent of f; evidence and nonces linear in the
//! quorum size.

use bench::{emit, Row};
use ia_ccf_crypto::KeyPair;
use ia_ccf_types::config::testutil::test_config;
use ia_ccf_types::messages::testutil::test_pp;
use ia_ccf_types::{
    ClientId, LedgerEntry, LedgerIdx, Nonce, NonceCommitment, Prepare, Request, RequestAction,
    SeqNum, SignedRequest, TxLedgerEntry, TxResult, View, Wire,
};

fn smallbank_tx_entry(args_len: usize, output_len: usize) -> LedgerEntry {
    let kp = KeyPair::from_label("client");
    let request = SignedRequest::sign(
        Request {
            action: RequestAction::App {
                proc: ia_ccf_smallbank::TRANSFER,
                args: vec![0xAB; args_len],
            },
            client: ClientId(1000),
            gt_hash: ia_ccf_crypto::hash_bytes(b"gt"),
            min_index: LedgerIdx(12345),
            req_id: 42,
        },
        &kp,
    );
    LedgerEntry::Tx(TxLedgerEntry {
        request,
        index: LedgerIdx(12346),
        result: TxResult {
            ok: true,
            output: vec![0xCD; output_len],
            write_set_digest: ia_ccf_crypto::hash_bytes(b"ws"),
        },
    })
}

fn evidence_entries(n: usize) -> (LedgerEntry, LedgerEntry) {
    let (config, replica_keys, _) = test_config(n);
    let quorum = config.quorum();
    let kp = &replica_keys[1];
    let ppd = ia_ccf_crypto::hash_bytes(b"pp");
    let prepares: Vec<Prepare> = (1..quorum)
        .map(|r| {
            let nc = NonceCommitment(ia_ccf_crypto::hash_bytes(&[r as u8]));
            let payload = Prepare::signing_payload(
                View(0),
                SeqNum(9),
                ia_ccf_types::ReplicaId(r as u32),
                &nc,
                &ppd,
            );
            Prepare {
                view: View(0),
                seq: SeqNum(9),
                replica: ia_ccf_types::ReplicaId(r as u32),
                nonce_commit: nc,
                pp_digest: ppd,
                sig: kp.sign(&payload),
            }
        })
        .collect();
    let nonces: Vec<Nonce> = (0..quorum).map(|r| Nonce([r as u8; 16])).collect();
    (
        LedgerEntry::Evidence { seq: SeqNum(9), prepares },
        LedgerEntry::Nonces { seq: SeqNum(9), nonces },
    )
}

fn main() {
    let kp = KeyPair::from_label("primary");
    let pp = LedgerEntry::PrePrepare(test_pp(0, 9, &kp));
    let (ev1, no1) = evidence_entries(4); // f = 1
    let (ev3, no3) = evidence_entries(10); // f = 3
    let tx_small = smallbank_tx_entry(16, 8); // balance-style
    let tx_large = smallbank_tx_entry(24, 16); // transfer-style

    let rows = vec![
        Row::new(
            "Transaction (SmallBank)",
            &[("min_B", tx_small.wire_len() as f64), ("max_B", tx_large.wire_len() as f64)],
        ),
        Row::new("Pre-prepare", &[("f1_B", pp.wire_len() as f64), ("f3_B", pp.wire_len() as f64)]),
        Row::new(
            "Prepare evidence",
            &[("f1_B", ev1.wire_len() as f64), ("f3_B", ev3.wire_len() as f64)],
        ),
        Row::new("Nonces", &[("f1_B", no1.wire_len() as f64), ("f3_B", no3.wire_len() as f64)]),
    ];
    emit("tab1", "Tab. 1: ledger entry sizes (bytes)", &rows);
    println!(
        "\npaper: tx 216-358 | pre-prepare 277 (f-independent) | evidence 298/894 | nonces 32/64"
    );
    println!("shape checks: pre-prepare equal across f; evidence ~3x from f=1 to f=3");
}
