//! Pipeline throughput baseline: the perf trajectory for the staged
//! replica hot path.
//!
//! Drives a 4-replica deterministic sim cluster (`DetCluster` — single
//! threaded, so the number measures the *CPU cost of the normal-case
//! pipeline*: admission, batch verification, execution, Merkle/ledger
//! appends, reply emission) through N SmallBank batches and writes
//! `BENCH_pipeline.json` at the repo root. Two workload modes are
//! measured: **baseline** (uniform accounts, skew 0%) and **contended**
//! (the `--skew` knob routes that percentage of account draws to the hot
//! set — see `ia_ccf_smallbank::Workload::with_skew`), so both the
//! conflict-free and the conflict-heavy paths of sharded execution have
//! committed numbers. Later PRs must beat them.
//!
//! A third mode measures the *receipt-serving read path*: **refetch**
//! commits a window of batches, then hammers one backup with
//! `FetchReceipt` lookups (the client re-fetch path, §3.3) and reports
//! served lookups per second. This is the workload the emission-stage
//! receipt cache (locator index + frozen paths + memoized certificates)
//! exists for; its number is recorded alongside the throughput modes.
//!
//! A fourth mode measures *recovery*: **sync** commits a window, crashes
//! a replica, then recovers it through the paged `FetchLedgerPage` state
//! transfer (fresh instance, full replay with verification) and reports
//! pages/s and bytes/s to full recovery — the workload the resumable
//! transfer protocol exists for.
//!
//! Knobs:
//!
//! * `--mode=all|refetch|sync` / `IACCF_MODE` — `refetch` runs only the
//!   receipt-serving workload and writes
//!   `target/experiments/pipeline_refetch.json`; `sync` runs only the
//!   recovery workload and writes `target/experiments/pipeline_sync.json`;
//!   `all` (default) runs everything and writes the committed
//!   `BENCH_pipeline.json`;
//! * `--skew=N` / `IACCF_SKEW` — contended-mode skew percent (default 90);
//! * `--shards=N` / `IACCF_SHARDS` — execution shard count (default 0 =
//!   auto: the machine's available parallelism);
//! * `PIPELINE_BENCH_QUICK=1` — tiny baseline+refetch run for CI smoke
//!   (seconds; written to `target/experiments/pipeline_quick.json` so a
//!   local smoke run can't clobber the committed baseline). The full run
//!   *also* measures the quick configurations and records them as
//!   `quick_ref_ops_per_sec` / `quick_ref_refetch_ops_per_sec`, the
//!   committed references CI compares its own quick run against
//!   (`scripts/check_bench_baseline.sh`, warn-only);
//! * `IACCF_ACCOUNTS` — SmallBank account count (default 10 000).

use std::sync::Arc;
use std::time::Instant;

use bench::accounts;
use ia_ccf_core::{Input, NodeId, ProtocolParams};
use ia_ccf_sim::metrics::Histogram;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{ProtocolMsg, ReplicaId};

struct BenchConfig {
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
    quick: bool,
    refetch_only: bool,
    sync_only: bool,
}

fn knob(cli: &str, env: &str) -> Option<u64> {
    knob_str(cli, env).and_then(|v| v.parse().ok())
}

fn knob_str(cli: &str, env: &str) -> Option<String> {
    let from_cli = std::env::args()
        .find_map(|a| a.strip_prefix(&format!("--{cli}=")).map(str::to_string));
    from_cli.or_else(|| std::env::var(env).ok())
}

fn config() -> BenchConfig {
    let quick = std::env::var_os("PIPELINE_BENCH_QUICK").is_some();
    let skew_pct = knob("skew", "IACCF_SKEW").unwrap_or(90).min(100) as u8;
    let shards = knob("shards", "IACCF_SHARDS").unwrap_or(0) as usize;
    let mode = knob_str("mode", "IACCF_MODE");
    let refetch_only = matches!(mode.as_deref(), Some("refetch"));
    let sync_only = matches!(mode.as_deref(), Some("sync"));
    if quick {
        BenchConfig {
            batches: 5,
            batch_size: 20,
            accounts: 1_000,
            skew_pct,
            shards,
            quick,
            refetch_only,
            sync_only,
        }
    } else {
        BenchConfig {
            batches: 40,
            batch_size: 100,
            accounts: accounts(),
            skew_pct,
            shards,
            quick,
            refetch_only,
            sync_only,
        }
    }
}

struct ModeResult {
    ops_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One measured mode: a fresh primed cluster driven through
/// `batches × batch_size` transactions generated at `skew_pct`.
fn run_mode(
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
) -> ModeResult {
    let n_clients = 4;
    let params = ProtocolParams { execution_shards: shards, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));

    // Pre-populate identical SmallBank state on every replica (stands in
    // for a bulk-load phase; see `Replica::prime_kv`).
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }

    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 7_000 + i as u64, skew_pct))
        .collect();

    // Warm-up: one small batch outside the measured window.
    for (ci, w) in workloads.iter_mut().enumerate() {
        let op = w.next_op();
        cluster.submit(spec.clients[ci].0, op.proc, op.args);
    }
    assert!(cluster.run_until_finished(n_clients, 200), "warm-up stalled");
    let warmed = cluster.finished.len();

    // Measured run: `batches` rounds of `batch_size` transactions, each
    // submitted together and driven to receipt completion.
    let mut batch_lat = Histogram::new();
    let mut done = warmed;
    let t0 = Instant::now();
    for _ in 0..batches {
        let tb = Instant::now();
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(
            cluster.run_until_finished(done, 2_000),
            "batch stalled: {}/{done} finished",
            cluster.finished.len()
        );
        batch_lat.record(tb.elapsed());
    }
    let elapsed = t0.elapsed();
    cluster.assert_ledgers_consistent();

    let total_ops = (batches * batch_size) as u64;
    ModeResult {
        ops_s: total_ops as f64 / elapsed.as_secs_f64(),
        p50_ms: batch_lat.p50_us() as f64 / 1000.0,
        p99_ms: batch_lat.p99_us() as f64 / 1000.0,
    }
}

/// The quick-mode refetch workload — (commit batches, batch size,
/// accounts, lookups). The CI smoke run, the `--mode=refetch` quick run
/// and the full run's committed `quick_ref_refetch_ops_per_sec`
/// reference all share it, so the baseline fence always compares
/// like-for-like workloads.
const QUICK_REFETCH: (usize, usize, u64, usize) = (5, 20, 1_000, 2_000);

fn run_refetch_quick() -> f64 {
    let (batches, batch_size, accounts, lookups) = QUICK_REFETCH;
    run_refetch(batches, batch_size, accounts, lookups)
}

/// The receipt-serving workload (`--mode=refetch`, also folded into the
/// full run): commit `batches × batch_size` SmallBank transactions, then
/// replay `lookups` `FetchReceipt` requests against one backup, rotating
/// over the committed transaction hashes. Measures the emission-stage
/// read path only — locator lookup, frozen-path slice, reply assembly —
/// and reports served lookups per second.
fn run_refetch(batches: usize, batch_size: usize, accounts: u64, lookups: usize) -> f64 {
    let n_clients = 4;
    // Retain every committed batch so each lookup is a hit.
    let params = ProtocolParams {
        exec_retention_batches: (batches + 16) as u64,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }
    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 9_000 + i as u64, 0))
        .collect();
    let mut done = 0;
    for _ in 0..batches {
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(cluster.run_until_finished(done, 2_000), "refetch warm-up stalled");
    }
    // Rotate over the recent committed tail: re-fetch needs the batch's
    // message-store slot (reply signature + nonce), and the ordering
    // stage compacts slots beyond ~4P·8 batches — older transactions are
    // unserved by design (the client would ask another replica).
    let mut hashes: Vec<_> =
        cluster.finished.iter().map(|(_, tx)| tx.request.digest()).collect();
    let tail = hashes.len().saturating_sub(8 * batch_size);
    hashes.drain(..tail);
    let client = spec.clients[0].0;
    let backup = &mut cluster.replicas.get_mut(&ReplicaId(1)).expect("backup").inner;

    let mut served = 0usize;
    let t0 = Instant::now();
    for i in 0..lookups {
        let tx_hash = hashes[i % hashes.len()];
        let outs = backup.handle(Input::Message {
            from: NodeId::Client(client),
            msg: ProtocolMsg::FetchReceipt { tx_hash },
        });
        served += usize::from(!outs.is_empty());
    }
    let elapsed = t0.elapsed();
    assert_eq!(served, lookups, "every lookup must hit the retention window");
    let stats = backup.receipt_cache_stats();
    assert!(
        stats.locator_hits as usize >= lookups,
        "refetch must be served through the locator index"
    );
    lookups as f64 / elapsed.as_secs_f64()
}

/// Result of one recovery (state transfer) run.
struct SyncResult {
    pages: u64,
    bytes: u64,
    pages_s: f64,
    bytes_s: f64,
}

/// The quick-mode sync workload — (commit batches, batch size, accounts).
/// Shared by the CI smoke run, the `--mode=sync` quick run and the full
/// run's committed `quick_ref_sync_bytes_per_sec` reference.
const QUICK_SYNC: (usize, usize, u64) = (5, 20, 1_000);

/// The recovery workload (`--mode=sync`, also folded into the full run):
/// commit `batches × batch_size` SmallBank transactions, crash replica 3,
/// then recover a fresh instance of it through the paged `FetchLedgerPage`
/// state transfer — every page verified and replayed through the
/// execution machinery — and measure pages/s and bytes/s to full
/// recovery. 16 KiB pages, so the transfer genuinely pages (even in the
/// quick configuration) instead of fitting one response.
fn run_sync(batches: usize, batch_size: usize, accounts: u64) -> SyncResult {
    let n_clients = 4;
    let params = ProtocolParams {
        sync_page_bytes: 16 * 1024,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }
    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 11_000 + i as u64, 0))
        .collect();
    let mut done = 0;
    for _ in 0..batches {
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(cluster.run_until_finished(done, 2_000), "sync warm-up stalled");
    }

    // Crash replica 3 and recover a fresh instance of it via pages.
    cluster.crash(ReplicaId(3));
    let mut fresh = spec.build_replica(3, Arc::new(ia_ccf_smallbank::SmallBankApp));
    fresh.prime_kv(&cp);
    let t0 = Instant::now();
    cluster.recover(fresh, ReplicaId(0));
    assert!(
        cluster.run_until(5_000, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "recovery did not complete: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let elapsed = t0.elapsed();
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(report.pages >= 2, "the transfer must actually page ({} pages)", report.pages);
    assert_eq!(report.failovers, 0, "honest servers: no failover expected");
    // Full-recovery check: the replayed ledger and KV state match the
    // server's, byte for byte (digest-level here; the byte-level
    // differential lives in tests/paged_fetch_equiv.rs).
    let (recovered, server) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(0)));
    assert_eq!(recovered.ledger().len(), server.ledger().len());
    assert_eq!(recovered.ledger().root_m(), server.ledger().root_m());
    assert_eq!(recovered.kv().digest(), server.kv().digest());

    SyncResult {
        pages: report.pages,
        bytes: report.bytes,
        pages_s: report.pages as f64 / elapsed.as_secs_f64(),
        bytes_s: report.bytes as f64 / elapsed.as_secs_f64(),
    }
}

fn run_sync_quick() -> SyncResult {
    let (batches, batch_size, accounts) = QUICK_SYNC;
    run_sync(batches, batch_size, accounts)
}

fn main() {
    let cfg = config();
    if cfg.sync_only {
        let (batches, batch_size, accounts) =
            if cfg.quick { QUICK_SYNC } else { (40, 100, cfg.accounts) };
        println!("=== pipeline_throughput --mode=sync (4 replicas, SmallBank) ===");
        let r = run_sync(batches, batch_size, accounts);
        println!(
            "sync: pages={} bytes={} pages_s={:.1} bytes_s={:.1}",
            r.pages, r.bytes, r.pages_s, r.bytes_s
        );
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"sync\",\n  \
             \"quick\": {},\n  \"sync_pages\": {},\n  \"sync_bytes\": {},\n  \
             \"sync_pages_per_sec\": {:.1},\n  \"sync_bytes_per_sec\": {:.1}\n}}\n",
            cfg.quick, r.pages, r.bytes, r.pages_s, r.bytes_s
        );
        let path = "target/experiments/pipeline_sync.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    if cfg.refetch_only {
        let (batches, batch_size, accounts, lookups) =
            if cfg.quick { QUICK_REFETCH } else { (40, 100, cfg.accounts, 200_000) };
        println!("=== pipeline_throughput --mode=refetch (4 replicas, SmallBank) ===");
        let ops_s = run_refetch(batches, batch_size, accounts, lookups);
        println!("refetch: lookups={lookups} ops_s={ops_s:.1}");
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"refetch\",\n  \
             \"quick\": {},\n  \"refetch_lookups\": {lookups},\n  \
             \"refetch_ops_per_sec\": {ops_s:.1}\n}}\n",
            cfg.quick
        );
        let path = "target/experiments/pipeline_refetch.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    println!("=== pipeline_throughput (4 replicas, SmallBank) ===");
    println!(
        "batches={} batch_size={} accounts={} shards={} quick={}",
        cfg.batches, cfg.batch_size, cfg.accounts, cfg.shards, cfg.quick
    );

    let baseline = run_mode(cfg.batches, cfg.batch_size, cfg.accounts, 0, cfg.shards);
    println!(
        "baseline  (skew 0%):  ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
        baseline.ops_s, baseline.p50_ms, baseline.p99_ms
    );

    let (path, json) = if cfg.quick {
        // Quick mode is the CI smoke: the baseline throughput mode plus
        // tiny refetch and sync runs (the comparison script reads the
        // ops/s and bytes/s keys); the numbers are meaningless for the
        // trajectory — never overwrite the committed repo-root baseline
        // with them.
        let refetch = run_refetch_quick();
        println!("refetch   (quick):    ops_s={refetch:.1}");
        let sync = run_sync_quick();
        println!("sync      (quick):    pages_s={:.1} bytes_s={:.1}", sync.pages_s, sync.bytes_s);
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"quick\": true,\n  \
             \"ops_per_sec\": {:.1},\n  \"refetch_ops_per_sec\": {refetch:.1},\n  \
             \"sync_bytes_per_sec\": {:.1}\n}}\n",
            baseline.ops_s, sync.bytes_s
        );
        ("target/experiments/pipeline_quick.json", json)
    } else {
        let contended =
            run_mode(cfg.batches, cfg.batch_size, cfg.accounts, cfg.skew_pct, cfg.shards);
        println!(
            "contended (skew {}%): ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
            cfg.skew_pct, contended.ops_s, contended.p50_ms, contended.p99_ms
        );
        // The receipt-serving read path, at the full window size.
        let refetch_lookups = 200_000usize;
        let refetch = run_refetch(cfg.batches, cfg.batch_size, cfg.accounts, refetch_lookups);
        println!("refetch   (serving):  lookups={refetch_lookups} ops_s={refetch:.1}");
        // The recovery path, at the full window size.
        let sync = run_sync(cfg.batches, cfg.batch_size, cfg.accounts);
        println!(
            "sync      (recovery): pages={} bytes={} pages_s={:.1} bytes_s={:.1}",
            sync.pages, sync.bytes, sync.pages_s, sync.bytes_s
        );
        // Also measure the quick configurations: the committed references
        // CI's quick smoke run is compared against (warn-only).
        let quick_ref = run_mode(5, 20, 1_000, 0, cfg.shards);
        let quick_refetch = run_refetch_quick();
        let quick_sync = run_sync_quick();
        println!(
            "quick-ref (CI smoke): ops_s={:.1} refetch_ops_s={quick_refetch:.1} sync_bytes_s={:.1}",
            quick_ref.ops_s, quick_sync.bytes_s
        );
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"replicas\": 4,\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \"accounts\": {},\n  \
             \"quick\": false,\n  \"ops_per_sec\": {:.1},\n  \
             \"batch_p50_ms\": {:.3},\n  \"batch_p99_ms\": {:.3},\n  \
             \"contended_skew_pct\": {},\n  \"contended_ops_per_sec\": {:.1},\n  \
             \"contended_batch_p50_ms\": {:.3},\n  \"contended_batch_p99_ms\": {:.3},\n  \
             \"refetch_lookups\": {refetch_lookups},\n  \
             \"refetch_ops_per_sec\": {refetch:.1},\n  \
             \"sync_pages\": {},\n  \"sync_bytes\": {},\n  \
             \"sync_pages_per_sec\": {:.1},\n  \"sync_bytes_per_sec\": {:.1},\n  \
             \"quick_ref_ops_per_sec\": {:.1},\n  \
             \"quick_ref_refetch_ops_per_sec\": {quick_refetch:.1},\n  \
             \"quick_ref_sync_bytes_per_sec\": {:.1}\n}}\n",
            cfg.batches,
            cfg.batch_size,
            cfg.accounts,
            baseline.ops_s,
            baseline.p50_ms,
            baseline.p99_ms,
            cfg.skew_pct,
            contended.ops_s,
            contended.p50_ms,
            contended.p99_ms,
            sync.pages,
            sync.bytes,
            sync.pages_s,
            sync.bytes_s,
            quick_ref.ops_s,
            quick_sync.bytes_s
        );
        ("BENCH_pipeline.json", json)
    };
    std::fs::write(path, json).expect("write bench json");
    println!("[written {path}]");
}
