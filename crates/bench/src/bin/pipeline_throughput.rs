//! Pipeline throughput baseline: the perf trajectory for the staged
//! replica hot path.
//!
//! Drives a 4-replica deterministic sim cluster (`DetCluster` — single
//! threaded, so the number measures the *CPU cost of the normal-case
//! pipeline*: admission, batch verification, execution, Merkle/ledger
//! appends, reply emission) through N SmallBank batches and writes
//! `BENCH_pipeline.json` at the repo root with ops/s and p50/p99
//! per-batch latency. Later PRs must beat the committed numbers.
//!
//! Knobs:
//!
//! * `PIPELINE_BENCH_QUICK=1` — tiny run for CI smoke (seconds, numbers
//!   meaningless; written to `target/experiments/pipeline_quick.json` so
//!   a local smoke run can't clobber the committed baseline);
//! * `IACCF_ACCOUNTS` — SmallBank account count (default 10 000).

use std::sync::Arc;
use std::time::Instant;

use bench::accounts;
use ia_ccf_core::ProtocolParams;
use ia_ccf_sim::metrics::Histogram;
use ia_ccf_sim::{ClusterSpec, DetCluster};

struct BenchConfig {
    batches: usize,
    batch_size: usize,
    accounts: u64,
    quick: bool,
}

fn config() -> BenchConfig {
    let quick = std::env::var_os("PIPELINE_BENCH_QUICK").is_some();
    if quick {
        BenchConfig { batches: 5, batch_size: 20, accounts: 1_000, quick }
    } else {
        BenchConfig { batches: 40, batch_size: 100, accounts: accounts(), quick }
    }
}

fn main() {
    let cfg = config();
    let n_clients = 4;
    let params = ProtocolParams::default();
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));

    // Pre-populate identical SmallBank state on every replica (stands in
    // for a bulk-load phase; see `Replica::prime_kv`).
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, cfg.accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }

    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::new(cfg.accounts, 7_000 + i as u64))
        .collect();

    // Warm-up: one small batch outside the measured window.
    for (ci, w) in workloads.iter_mut().enumerate() {
        let op = w.next_op();
        cluster.submit(spec.clients[ci].0, op.proc, op.args);
    }
    assert!(cluster.run_until_finished(n_clients, 200), "warm-up stalled");
    let warmed = cluster.finished.len();

    // Measured run: `batches` rounds of `batch_size` transactions, each
    // submitted together and driven to receipt completion.
    let mut batch_lat = Histogram::new();
    let mut done = warmed;
    let t0 = Instant::now();
    for _ in 0..cfg.batches {
        let tb = Instant::now();
        for k in 0..cfg.batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += cfg.batch_size;
        assert!(
            cluster.run_until_finished(done, 2_000),
            "batch stalled: {}/{done} finished",
            cluster.finished.len()
        );
        batch_lat.record(tb.elapsed());
    }
    let elapsed = t0.elapsed();
    cluster.assert_ledgers_consistent();

    let total_ops = (cfg.batches * cfg.batch_size) as u64;
    let ops_s = total_ops as f64 / elapsed.as_secs_f64();
    let p50_ms = batch_lat.p50_us() as f64 / 1000.0;
    let p99_ms = batch_lat.p99_us() as f64 / 1000.0;

    println!("\n=== pipeline_throughput (4 replicas, SmallBank) ===");
    println!(
        "batches={} batch_size={} accounts={} quick={}",
        cfg.batches, cfg.batch_size, cfg.accounts, cfg.quick
    );
    println!("ops_s={ops_s:.1}  batch_p50_ms={p50_ms:.2}  batch_p99_ms={p99_ms:.2}");

    let json = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"replicas\": 4,\n  \
         \"batches\": {},\n  \"batch_size\": {},\n  \"accounts\": {},\n  \
         \"quick\": {},\n  \"ops_per_sec\": {:.1},\n  \"batch_p50_ms\": {:.3},\n  \
         \"batch_p99_ms\": {:.3}\n}}\n",
        cfg.batches, cfg.batch_size, cfg.accounts, cfg.quick, ops_s, p50_ms, p99_ms
    );
    // Quick-mode numbers are meaningless — never overwrite the committed
    // repo-root baseline with them.
    let path = if cfg.quick {
        let _ = std::fs::create_dir_all("target/experiments");
        "target/experiments/pipeline_quick.json"
    } else {
        "BENCH_pipeline.json"
    };
    std::fs::write(path, json).expect("write bench json");
    println!("[written {path}]");
}
