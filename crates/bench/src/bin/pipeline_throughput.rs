//! Pipeline throughput baseline: the perf trajectory for the staged
//! replica hot path.
//!
//! Drives a 4-replica deterministic sim cluster (`DetCluster` — single
//! threaded, so the number measures the *CPU cost of the normal-case
//! pipeline*: admission, batch verification, execution, Merkle/ledger
//! appends, reply emission) through N SmallBank batches and writes
//! `BENCH_pipeline.json` at the repo root. Two workload modes are
//! measured: **baseline** (uniform accounts, skew 0%) and **contended**
//! (the `--skew` knob routes that percentage of account draws to the hot
//! set — see `ia_ccf_smallbank::Workload::with_skew`), so both the
//! conflict-free and the conflict-heavy paths of sharded execution have
//! committed numbers. Later PRs must beat them.
//!
//! A third mode measures the *receipt-serving read path*: **refetch**
//! commits a window of batches, then hammers one backup with
//! `FetchReceipt` lookups (the client re-fetch path, §3.3) and reports
//! served lookups per second. This is the workload the emission-stage
//! receipt cache (locator index + frozen paths + memoized certificates)
//! exists for; its number is recorded alongside the throughput modes.
//!
//! A fourth mode measures *recovery*: **sync** commits a window, crashes
//! a replica, then recovers it through the paged `FetchLedgerPage` state
//! transfer (fresh instance, full replay with verification) and reports
//! pages/s and bytes/s to full recovery — the workload the resumable
//! transfer protocol exists for.
//!
//! A fifth mode compares the *recovery strategies*: **recovery**
//! commits a window with checkpoints agreed every 5 sequence numbers,
//! crashes a replica, then recovers a fresh instance twice over the
//! identical history — once replaying from genesis (O(history) bytes)
//! and once through the checkpoint fast path (verified `KvCheckpoint`
//! transfer plus the ledger suffix, O(window) bytes). A third leg gives
//! the fast-path recoveree a durable `data_dir` (so the verified seed is
//! persisted as checkpoint file + suffix segments), crashes it *again*,
//! restarts it locally from its own disk and records the bytes its
//! second sync moves: the missed suffix only, with the prefix crossing
//! the network zero times. All byte counts are deterministic, which is
//! what the baseline fence keys on.
//!
//! A sixth mode measures the *transport*: **c10k** stands up a real
//! 4-replica cluster over localhost TCP (the event-driven `ia_ccf_net::tcp`
//! runtime), floods it with thousands of concurrent framed load
//! connections from a single driver thread, and — while the storm runs —
//! drives a real protocol client to committed receipts. It reports the
//! concurrent connection count the cluster actually held, the framed
//! messages/s it absorbed, and the process thread count and RSS (the
//! O(nodes)-threads claim of the readiness-driven event loop, versus the
//! thread-per-connection transport it replaced).
//!
//! The full run additionally records the *admission verify stage* in
//! isolation: Ed25519 batch verification sequentially versus fanned out
//! over the persistent worker pool (`verify_batch_indices_on`), at the
//! machine's resolved pool size and at a pinned 4-thread pool — the
//! committed evidence that the pool engages (`verify_pool4_tasks` > 0)
//! and what the fan-out buys, independent of the runner's core count.
//!
//! Knobs:
//!
//! * `--mode=all|refetch|sync|recovery|c10k` / `IACCF_MODE` — `refetch`
//!   runs only the receipt-serving workload and writes
//!   `target/experiments/pipeline_refetch.json`; `sync` runs only the
//!   recovery workload and writes `target/experiments/pipeline_sync.json`;
//!   `recovery` runs only the genesis-vs-checkpoint comparison and writes
//!   `target/experiments/pipeline_recovery.json`;
//!   `c10k` runs only the transport workload and writes
//!   `target/experiments/pipeline_c10k.json`;
//!   `all` (default) runs everything and writes the committed
//!   `BENCH_pipeline.json`;
//! * `--skew=N` / `IACCF_SKEW` — contended-mode skew percent (default 90);
//! * `--shards=N` / `IACCF_SHARDS` — execution shard count (default 0 =
//!   auto: the machine's available parallelism);
//! * `PIPELINE_BENCH_QUICK=1` — tiny baseline+refetch run for CI smoke
//!   (seconds; written to `target/experiments/pipeline_quick.json` so a
//!   local smoke run can't clobber the committed baseline). The full run
//!   *also* measures the quick configurations and records them as
//!   `quick_ref_ops_per_sec` / `quick_ref_refetch_ops_per_sec`, the
//!   committed references CI compares its own quick run against
//!   (`scripts/check_bench_baseline.sh`, warn-only);
//! * `IACCF_ACCOUNTS` — SmallBank account count (default 10 000).

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::accounts;
use ia_ccf_client::{Client, ClientSend};
use ia_ccf_core::app::CounterApp;
use ia_ccf_core::{Input, NodeId, Output, ProtocolParams};
use ia_ccf_crypto::{verify_batch_indices, verify_batch_indices_on, KeyPair, VerifyJob};
use ia_ccf_net::{frame, TcpNode};
use ia_ccf_pool::WorkerPool;
use ia_ccf_sim::metrics::Histogram;
use ia_ccf_sim::{ClusterSpec, DetCluster, TempDir};
use ia_ccf_types::{ClientId, ProtocolMsg, ReplicaId, Wire};

struct BenchConfig {
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
    quick: bool,
    refetch_only: bool,
    sync_only: bool,
    recovery_only: bool,
    c10k_only: bool,
}

fn knob(cli: &str, env: &str) -> Option<u64> {
    knob_str(cli, env).and_then(|v| v.parse().ok())
}

fn knob_str(cli: &str, env: &str) -> Option<String> {
    let from_cli = std::env::args()
        .find_map(|a| a.strip_prefix(&format!("--{cli}=")).map(str::to_string));
    from_cli.or_else(|| std::env::var(env).ok())
}

fn config() -> BenchConfig {
    let quick = std::env::var_os("PIPELINE_BENCH_QUICK").is_some();
    let skew_pct = knob("skew", "IACCF_SKEW").unwrap_or(90).min(100) as u8;
    let shards = knob("shards", "IACCF_SHARDS").unwrap_or(0) as usize;
    let mode = knob_str("mode", "IACCF_MODE");
    let refetch_only = matches!(mode.as_deref(), Some("refetch"));
    let sync_only = matches!(mode.as_deref(), Some("sync"));
    let recovery_only = matches!(mode.as_deref(), Some("recovery"));
    let c10k_only = matches!(mode.as_deref(), Some("c10k"));
    if quick {
        BenchConfig {
            batches: 5,
            batch_size: 20,
            accounts: 1_000,
            skew_pct,
            shards,
            quick,
            refetch_only,
            sync_only,
            recovery_only,
            c10k_only,
        }
    } else {
        BenchConfig {
            batches: 40,
            batch_size: 100,
            accounts: accounts(),
            skew_pct,
            shards,
            quick,
            refetch_only,
            sync_only,
            recovery_only,
            c10k_only,
        }
    }
}

struct ModeResult {
    ops_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One measured mode: a fresh primed cluster driven through
/// `batches × batch_size` transactions generated at `skew_pct`.
fn run_mode(
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
) -> ModeResult {
    let n_clients = 4;
    let params = ProtocolParams { execution_shards: shards, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));

    // Pre-populate identical SmallBank state on every replica (stands in
    // for a bulk-load phase; see `Replica::prime_kv`).
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }

    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 7_000 + i as u64, skew_pct))
        .collect();

    // Warm-up: one small batch outside the measured window.
    for (ci, w) in workloads.iter_mut().enumerate() {
        let op = w.next_op();
        cluster.submit(spec.clients[ci].0, op.proc, op.args);
    }
    assert!(cluster.run_until_finished(n_clients, 200), "warm-up stalled");
    let warmed = cluster.finished.len();

    // Measured run: `batches` rounds of `batch_size` transactions, each
    // submitted together and driven to receipt completion.
    let mut batch_lat = Histogram::new();
    let mut done = warmed;
    let t0 = Instant::now();
    for _ in 0..batches {
        let tb = Instant::now();
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(
            cluster.run_until_finished(done, 2_000),
            "batch stalled: {}/{done} finished",
            cluster.finished.len()
        );
        batch_lat.record(tb.elapsed());
    }
    let elapsed = t0.elapsed();
    cluster.assert_ledgers_consistent();

    let total_ops = (batches * batch_size) as u64;
    ModeResult {
        ops_s: total_ops as f64 / elapsed.as_secs_f64(),
        p50_ms: batch_lat.p50_us() as f64 / 1000.0,
        p99_ms: batch_lat.p99_us() as f64 / 1000.0,
    }
}

/// The quick-mode refetch workload — (commit batches, batch size,
/// accounts, lookups). The CI smoke run, the `--mode=refetch` quick run
/// and the full run's committed `quick_ref_refetch_ops_per_sec`
/// reference all share it, so the baseline fence always compares
/// like-for-like workloads.
const QUICK_REFETCH: (usize, usize, u64, usize) = (5, 20, 1_000, 2_000);

fn run_refetch_quick() -> f64 {
    let (batches, batch_size, accounts, lookups) = QUICK_REFETCH;
    run_refetch(batches, batch_size, accounts, lookups)
}

/// The receipt-serving workload (`--mode=refetch`, also folded into the
/// full run): commit `batches × batch_size` SmallBank transactions, then
/// replay `lookups` `FetchReceipt` requests against one backup, rotating
/// over the committed transaction hashes. Measures the emission-stage
/// read path only — locator lookup, frozen-path slice, reply assembly —
/// and reports served lookups per second.
fn run_refetch(batches: usize, batch_size: usize, accounts: u64, lookups: usize) -> f64 {
    let n_clients = 4;
    // Retain every committed batch so each lookup is a hit.
    let params = ProtocolParams {
        exec_retention_batches: (batches + 16) as u64,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }
    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 9_000 + i as u64, 0))
        .collect();
    let mut done = 0;
    for _ in 0..batches {
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(cluster.run_until_finished(done, 2_000), "refetch warm-up stalled");
    }
    // Rotate over the recent committed tail: re-fetch needs the batch's
    // message-store slot (reply signature + nonce), and the ordering
    // stage compacts slots beyond ~4P·8 batches — older transactions are
    // unserved by design (the client would ask another replica).
    let mut hashes: Vec<_> =
        cluster.finished.iter().map(|(_, tx)| tx.request.digest()).collect();
    let tail = hashes.len().saturating_sub(8 * batch_size);
    hashes.drain(..tail);
    let client = spec.clients[0].0;
    let backup = &mut cluster.replicas.get_mut(&ReplicaId(1)).expect("backup").inner;

    let mut served = 0usize;
    let t0 = Instant::now();
    for i in 0..lookups {
        let tx_hash = hashes[i % hashes.len()];
        let outs = backup.handle(Input::Message {
            from: NodeId::Client(client),
            msg: ProtocolMsg::FetchReceipt { tx_hash },
        });
        served += usize::from(!outs.is_empty());
    }
    let elapsed = t0.elapsed();
    assert_eq!(served, lookups, "every lookup must hit the retention window");
    let stats = backup.receipt_cache_stats();
    assert!(
        stats.locator_hits as usize >= lookups,
        "refetch must be served through the locator index"
    );
    lookups as f64 / elapsed.as_secs_f64()
}

/// Result of one recovery (state transfer) run.
struct SyncResult {
    pages: u64,
    bytes: u64,
    pages_s: f64,
    bytes_s: f64,
}

/// The quick-mode sync workload — (commit batches, batch size, accounts).
/// Shared by the CI smoke run, the `--mode=sync` quick run and the full
/// run's committed `quick_ref_sync_bytes_per_sec` reference.
const QUICK_SYNC: (usize, usize, u64) = (5, 20, 1_000);

/// The recovery workload (`--mode=sync`, also folded into the full run):
/// commit `batches × batch_size` SmallBank transactions, crash replica 3,
/// then recover a fresh instance of it through the paged `FetchLedgerPage`
/// state transfer — every page verified and replayed through the
/// execution machinery — and measure pages/s and bytes/s to full
/// recovery. 16 KiB pages, so the transfer genuinely pages (even in the
/// quick configuration) instead of fitting one response.
fn run_sync(batches: usize, batch_size: usize, accounts: u64) -> SyncResult {
    let n_clients = 4;
    let params = ProtocolParams {
        sync_page_bytes: 16 * 1024,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }
    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 11_000 + i as u64, 0))
        .collect();
    let mut done = 0;
    for _ in 0..batches {
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(cluster.run_until_finished(done, 2_000), "sync warm-up stalled");
    }

    // Crash replica 3 and recover a fresh instance of it via pages.
    cluster.crash(ReplicaId(3));
    let mut fresh = spec.build_replica(3, Arc::new(ia_ccf_smallbank::SmallBankApp));
    fresh.prime_kv(&cp);
    let t0 = Instant::now();
    cluster.recover(fresh, ReplicaId(0));
    assert!(
        cluster.run_until(5_000, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "recovery did not complete: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let elapsed = t0.elapsed();
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(report.pages >= 2, "the transfer must actually page ({} pages)", report.pages);
    assert_eq!(report.failovers, 0, "honest servers: no failover expected");
    // Full-recovery check: the replayed ledger and KV state match the
    // server's, byte for byte (digest-level here; the byte-level
    // differential lives in tests/paged_fetch_equiv.rs).
    let (recovered, server) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(0)));
    assert_eq!(recovered.ledger().len(), server.ledger().len());
    assert_eq!(recovered.ledger().root_m(), server.ledger().root_m());
    assert_eq!(recovered.kv().digest(), server.kv().digest());

    SyncResult {
        pages: report.pages,
        bytes: report.bytes,
        pages_s: report.pages as f64 / elapsed.as_secs_f64(),
        bytes_s: report.bytes as f64 / elapsed.as_secs_f64(),
    }
}

fn run_sync_quick() -> SyncResult {
    let (batches, batch_size, accounts) = QUICK_SYNC;
    run_sync(batches, batch_size, accounts)
}

/// Result of one recovery-comparison run: the same committed history
/// recovered by a full genesis replay, by the checkpoint fast path, and
/// by a local restart from a persisted seed after a second crash.
struct RecoveryResult {
    genesis_pages: u64,
    genesis_bytes: u64,
    ckpt_pages: u64,
    ckpt_bytes: u64,
    /// Sequence number of the agreed checkpoint the fast path restored.
    ckpt_seed: u64,
    /// Bytes the durable double-crash leg moved on its *second* sync —
    /// the suffix it missed while down; the prefix restarts from disk.
    seeded_local_bytes: u64,
    /// Second-sync bytes beyond the pure suffix oracle, i.e. prefix
    /// bytes re-transferred over the network. Held at zero.
    seeded_local_prefix_bytes: u64,
}

/// The quick-mode recovery workload — (commit rounds, round size,
/// accounts). Shared by the CI smoke run, the `--mode=recovery` quick
/// run and the full run's committed `quick_ref_recovery_*` references.
/// Enough rounds that several checkpoints have their mark batches
/// committed before the crash, and few enough accounts that the
/// O(state) checkpoint stays visibly below the O(history) replay even
/// at smoke scale.
const QUICK_RECOVERY: (usize, usize, u64) = (24, 8, 100);

/// The full-mode recovery workload. The account count is pinned low on
/// purpose: the checkpoint transfer is O(state) = O(accounts) while the
/// genesis replay is O(history) = O(transactions), so the separation the
/// mode exists to demonstrate needs history ≫ state.
const FULL_RECOVERY: (usize, usize, u64) = (40, 100, 1_000);

/// The recovery comparison (`--mode=recovery`, also folded into the full
/// run): commit `batches × batch_size` SmallBank transactions with
/// checkpoints agreed every 5 sequence numbers, crash replica 3, then
/// recover a fresh instance twice over the identical history — once with
/// the checkpoint fast path disabled (full replay from genesis) and once
/// enabled (verified `KvCheckpoint` transfer + ledger suffix pages). A
/// third leg replays the fast path with a durable `data_dir`, crashes
/// the seeded replica a second time, restarts it *locally* from the
/// persisted checkpoint file + suffix segments and records its
/// second-sync bytes — the missed window only, with zero prefix bytes on
/// the wire. All transfers are deterministic byte counts, which is what
/// the baseline fence keys on — a change that silently re-inflates
/// recovery to O(history) shifts the ratio far outside the envelope.
fn run_recovery(batches: usize, batch_size: usize, accounts: u64) -> RecoveryResult {
    let run = |fast_path: bool| -> ia_ccf_core::SyncReport {
        let n_clients = 4;
        let params = ProtocolParams {
            sync_page_bytes: 16 * 1024,
            ..ProtocolParams::default()
        };
        let spec =
            ClusterSpec::new(4, n_clients, params).with_config(|c| c.checkpoint_interval = 5);
        let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
        let mut seed_kv = ia_ccf_kv::KvStore::new();
        ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
        let cp = seed_kv.checkpoint();
        let ids: Vec<_> = cluster.replicas.keys().copied().collect();
        for id in ids {
            cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
        }
        let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
            .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 13_000 + i as u64, 0))
            .collect();
        let mut done = 0;
        for _ in 0..batches {
            for k in 0..batch_size {
                let ci = k % n_clients;
                let op = workloads[ci].next_op();
                cluster.submit(spec.clients[ci].0, op.proc, op.args);
            }
            done += batch_size;
            assert!(cluster.run_until_finished(done, 2_000), "recovery warm-up stalled");
        }

        // The whole history is committed; now replica 3 dies and a fresh
        // instance catches up from replica 0. The recoveree-side knob:
        // with checkpoints disabled the tip phase never pins an offer
        // and the sync replays from genesis.
        cluster.crash(ReplicaId(3));
        let mut params3 = spec.params.clone();
        params3.checkpoints_enabled = fast_path;
        let mut fresh =
            spec.build_replica_with(3, Arc::new(ia_ccf_smallbank::SmallBankApp), params3);
        fresh.prime_kv(&cp);
        cluster.recover(fresh, ReplicaId(0));
        assert!(
            cluster.run_until(5_000, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "recovery did not complete (fast_path={fast_path}): {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );
        // Digest-level full-recovery check for both strategies (the
        // byte-level differential lives in tests/durable_recovery.rs).
        let (recovered, server) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(0)));
        assert_eq!(recovered.ledger().len(), server.ledger().len());
        assert_eq!(recovered.ledger().root_m(), server.ledger().root_m());
        assert_eq!(recovered.kv().digest(), server.kv().digest());
        cluster.replica(ReplicaId(3)).sync_report()
    };

    let seeded = run(true);
    let control = run(false);
    assert!(seeded.checkpoint_seed.is_some(), "fast path must engage: {seeded:?}");
    assert!(control.checkpoint_seed.is_none(), "control must replay from genesis: {control:?}");
    assert!(
        seeded.bytes * 2 < control.bytes,
        "checkpoint + suffix must be far below a full replay: {} vs {}",
        seeded.bytes,
        control.bytes
    );

    // Third leg — the durable double-crash path. Same history, but the
    // recoveree keeps a `data_dir`, so the fast path persists the
    // verified checkpoint as the seeded durable layout (checkpoint file
    // + suffix segments). It then crashes a *second* time while a window
    // commits without it, and the restart is local: the prefix rebuilds
    // from disk and only the missed suffix is paged over the network.
    let (local_bytes, local_prefix_bytes) = {
        let n_clients = 4;
        let params = ProtocolParams { sync_page_bytes: 16 * 1024, ..ProtocolParams::default() };
        let spec =
            ClusterSpec::new(4, n_clients, params).with_config(|c| c.checkpoint_interval = 5);
        let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
        let mut seed_kv = ia_ccf_kv::KvStore::new();
        ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
        let cp = seed_kv.checkpoint();
        let ids: Vec<_> = cluster.replicas.keys().copied().collect();
        for id in ids {
            cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
        }
        let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
            .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 13_000 + i as u64, 0))
            .collect();
        let mut done = 0;
        for _ in 0..batches {
            for k in 0..batch_size {
                let ci = k % n_clients;
                let op = workloads[ci].next_op();
                cluster.submit(spec.clients[ci].0, op.proc, op.args);
            }
            done += batch_size;
            assert!(cluster.run_until_finished(done, 2_000), "seeded-local warm-up stalled");
        }

        // First crash: the replacement is durable, so the checkpoint
        // fast path both seeds it and persists the seeded layout.
        let tmp = TempDir::new("bench-recovery-local").expect("tempdir");
        cluster.crash(ReplicaId(3));
        let mut params3 = spec.params.clone();
        params3.data_dir = Some(tmp.subdir("r3").expect("subdir"));
        let mut fresh =
            spec.build_replica_with(3, Arc::new(ia_ccf_smallbank::SmallBankApp), params3.clone());
        fresh.prime_kv(&cp);
        cluster.recover(fresh, ReplicaId(0));
        assert!(
            cluster.run_until(5_000, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "seeded-local first recovery did not complete: {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );
        let first = cluster.replica(ReplicaId(3)).sync_report();
        assert!(first.checkpoint_seed.is_some(), "fast path must engage: {first:?}");
        assert!(
            cluster.replica(ReplicaId(3)).ledger().durable().map_or(0, |l| l.base()) > 0,
            "the on-disk run must be a suffix after seeding"
        );

        // Second crash (clean — the byte count must stay deterministic),
        // then a missed window commits while the replica is down.
        drop(cluster.crash_and_drop(ReplicaId(3)).expect("replica 3 present"));
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(cluster.run_until_finished(done, 2_000), "seeded-local missed window stalled");

        // Local restart: checkpoint + prefix from disk, suffix over the
        // network. No re-priming — the seed file carries the KV image.
        let restarted = spec
            .restart_replica(3, Arc::new(ia_ccf_smallbank::SmallBankApp), params3)
            .expect("seeded local restart");
        assert!(restarted.ledger().base() > 0, "restarted as a suffix ledger");
        let suffix_bytes: u64 = cluster
            .replica(ReplicaId(0))
            .ledger_fetch_oracle(restarted.prepared_up_to().next())
            .iter()
            .map(|e| e.len() as u64)
            .sum();
        cluster.recover(restarted, ReplicaId(0));
        assert!(
            cluster.run_until(5_000, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "seeded-local second recovery did not complete: {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );
        let report = cluster.replica(ReplicaId(3)).sync_report();
        assert!(report.checkpoint_seed.is_none(), "the prefix must come from disk: {report:?}");
        let (recovered, server) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(0)));
        assert_eq!(recovered.ledger().len(), server.ledger().len());
        assert_eq!(recovered.ledger().root_m(), server.ledger().root_m());
        assert_eq!(recovered.kv().digest(), server.kv().digest());
        (report.bytes, report.bytes.saturating_sub(suffix_bytes))
    };
    assert_eq!(
        local_prefix_bytes, 0,
        "a seeded local restart must move zero prefix bytes over the network"
    );

    RecoveryResult {
        genesis_pages: control.pages,
        genesis_bytes: control.bytes,
        ckpt_pages: seeded.pages,
        ckpt_bytes: seeded.bytes,
        ckpt_seed: seeded.checkpoint_seed.expect("asserted above").0,
        seeded_local_bytes: local_bytes,
        seeded_local_prefix_bytes: local_prefix_bytes,
    }
}

fn run_recovery_quick() -> RecoveryResult {
    let (batches, batch_size, accounts) = QUICK_RECOVERY;
    run_recovery(batches, batch_size, accounts)
}

/// Result of one transport (c10k) run.
struct C10kResult {
    /// Concurrent framed load connections the cluster actually held
    /// (counted server-side from the peer registries).
    connections: usize,
    /// Load frames absorbed per second across the cluster during the
    /// measured window.
    frames_s: f64,
    /// Process thread count during the storm — the O(nodes) claim.
    threads: u64,
    /// Process resident set at the end of the window, MiB.
    rss_mb: f64,
    /// Protocol transactions committed to receipts while the storm ran.
    commits: usize,
}

/// The quick-mode c10k workload — (load connections, window seconds).
/// Shared by the CI smoke run, the `--mode=c10k` quick run and the full
/// run's committed `quick_ref_c10k_frames_per_sec` reference.
const QUICK_C10K: (usize, u64) = (300, 2);

/// Load-client peer addresses start here; replica threads count frames
/// from these peers as transport load instead of decoding them.
const C10K_LOAD_BASE: u64 = 10_000;

fn proc_self_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// The transport workload (`--mode=c10k`, also folded into the full run):
/// a real 4-replica CounterApp cluster over localhost TCP, a single
/// driver thread holding `load_conns` framed connections (round-robin
/// non-blocking writes, so slow/throttled sockets are skipped, not
/// waited on), and a real protocol client committing transactions while
/// the storm runs. `min_conns` is the acceptance floor on the
/// server-side concurrent connection count (0 = no floor).
fn run_c10k(load_conns: usize, window_secs: u64, min_conns: usize) -> C10kResult {
    let n = 4usize;
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let stop = Arc::new(AtomicBool::new(false));
    let stop_load = Arc::new(AtomicBool::new(false));
    let load_frames = Arc::new(AtomicU64::new(0));
    let dial_done = Arc::new(AtomicBool::new(false));

    let nodes: Vec<Arc<TcpNode>> =
        (0..n as u64).map(|a| TcpNode::listen(a, "127.0.0.1:0").expect("bind")).collect();
    let client_node = TcpNode::listen(1_000, "127.0.0.1:0").expect("bind");
    for i in 0..n {
        for j in (i + 1)..n {
            nodes[i].connect(&nodes[j].local_addr()).expect("connect");
        }
        client_node.connect(&nodes[i].local_addr()).expect("connect");
    }
    let mesh_up = |node: &TcpNode, want: usize| {
        let t0 = Instant::now();
        while node.connected_peers().len() < want {
            assert!(t0.elapsed() < Duration::from_secs(10), "mesh did not settle");
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    for node in &nodes {
        mesh_up(node, n); // n-1 replicas + the client
    }
    mesh_up(&client_node, n);

    // Replica threads: protocol frames are decoded and handled as in the
    // tcp_cluster example; frames from load peers are counted as
    // transport throughput and dropped.
    let mut handles = Vec::new();
    for (rank, node) in nodes.iter().enumerate().take(n) {
        let mut replica = spec.build_replica(rank, Arc::new(CounterApp));
        let node = Arc::clone(node);
        let stop = Arc::clone(&stop);
        let load_frames = Arc::clone(&load_frames);
        handles.push(std::thread::spawn(move || {
            let mut last_tick = Instant::now();
            let mut scratch = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let input = match node.inbound.recv_timeout(Duration::from_millis(1)) {
                    Ok((peer, _frame)) if peer >= C10K_LOAD_BASE => {
                        load_frames.fetch_add(1, Ordering::Relaxed);
                        if last_tick.elapsed() < Duration::from_millis(1) {
                            continue;
                        }
                        Input::Tick
                    }
                    Ok((peer, frame)) => match ProtocolMsg::from_bytes(&frame) {
                        Ok(msg) => {
                            let from = if peer < 1_000 {
                                NodeId::Replica(ReplicaId(peer as u32))
                            } else {
                                NodeId::Client(ClientId(peer))
                            };
                            Input::Message { from, msg }
                        }
                        Err(_) => continue,
                    },
                    Err(_) => Input::Tick,
                };
                let mut inputs = vec![input];
                if last_tick.elapsed() >= Duration::from_millis(1) {
                    inputs.push(Input::Tick);
                    last_tick = Instant::now();
                }
                for input in inputs {
                    for out in replica.handle(input) {
                        match out {
                            Output::SendReplica(to, msg) => {
                                node.send(to.0 as u64, msg.encode_scratch(&mut scratch));
                            }
                            Output::BroadcastReplicas(msg) => {
                                let bytes = msg.encode_scratch(&mut scratch);
                                for peer in node.connected_peers() {
                                    if peer < 1_000 {
                                        node.send(peer, bytes);
                                    }
                                }
                            }
                            Output::SendClient(to, msg) => {
                                node.send(to.0, msg.encode_scratch(&mut scratch));
                            }
                            _ => {}
                        }
                    }
                }
            }
            node.shutdown();
        }));
    }

    // The load driver: one thread, `load_conns` sockets. Blocking
    // connect + hello, then non-blocking round-robin frame writes with a
    // per-socket offset so partial writes never tear a frame.
    let addrs: Vec<_> = nodes.iter().map(|node| node.local_addr()).collect();
    let driver = {
        let stop_load = Arc::clone(&stop_load);
        let dial_done = Arc::clone(&dial_done);
        std::thread::spawn(move || {
            struct LoadConn {
                stream: TcpStream,
                off: usize,
                dead: bool,
            }
            let mut wire = Vec::new();
            frame::encode(&[0x5A_u8; 64], &mut wire);
            let mut conns = Vec::with_capacity(load_conns);
            for i in 0..load_conns {
                let Ok(stream) = TcpStream::connect(addrs[i % addrs.len()]) else { continue };
                let _ = stream.set_nodelay(true);
                let mut stream = stream;
                if stream.write_all(&(C10K_LOAD_BASE + i as u64).to_le_bytes()).is_err() {
                    continue;
                }
                stream.set_nonblocking(true).expect("nonblocking");
                conns.push(LoadConn { stream, off: 0, dead: false });
                // Pace the dial storm a little so accept queues keep up.
                if i % 64 == 63 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            dial_done.store(true, Ordering::SeqCst);
            while !stop_load.load(Ordering::Relaxed) {
                let mut progressed = false;
                for c in conns.iter_mut() {
                    if c.dead {
                        continue;
                    }
                    match c.stream.write(&wire[c.off..]) {
                        Ok(0) => c.dead = true,
                        Ok(k) => {
                            c.off += k;
                            if c.off == wire.len() {
                                c.off = 0;
                            }
                            progressed = true;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(_) => c.dead = true,
                    }
                }
                if !progressed {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            conns.len()
        })
    };

    // Wait for the dial phase, then for the server-side registries to
    // absorb the handshakes, and record the concurrent connection count
    // the cluster actually holds.
    while !dial_done.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
    }
    let count_load_peers = |nodes: &[Arc<TcpNode>]| -> usize {
        nodes
            .iter()
            .map(|node| {
                node.connected_peers().iter().filter(|&&p| p >= C10K_LOAD_BASE).count()
            })
            .sum()
    };
    let mut connections = count_load_peers(&nodes);
    let settle0 = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let now = count_load_peers(&nodes);
        if now == connections || settle0.elapsed() > Duration::from_secs(20) {
            connections = now;
            break;
        }
        connections = now;
    }

    // Measured window: the storm runs while a real client drives
    // protocol transactions through the same cluster.
    let (client_id, client_kp) = spec.clients[0].clone();
    let gt_hash =
        ia_ccf_ledger::Ledger::new(spec.genesis.clone()).genesis_hash().expect("genesis");
    let mut client = Client::new(client_id, client_kp, gt_hash, spec.genesis.clone());
    let mut scratch = Vec::new();
    let window = Duration::from_secs(window_secs);
    let frames0 = load_frames.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let mut commits = 0usize;
    let mut submitted = 0usize;
    let drive_client = |client: &mut Client,
                            commits: &mut usize,
                            submitted: &mut usize,
                            scratch: &mut Vec<u8>| {
        if *submitted == *commits {
            client.submit(CounterApp::INCR, b"c10k-counter".to_vec());
            *submitted += 1;
        }
        for send in client.poll_send() {
            match send {
                ClientSend::To(r, msg) => {
                    client_node.send(r.0 as u64, msg.encode_scratch(scratch));
                }
                ClientSend::Broadcast(msg) => {
                    let bytes = msg.encode_scratch(scratch);
                    for peer in client_node.connected_peers() {
                        client_node.send(peer, bytes);
                    }
                }
            }
        }
        if let Ok((peer, frame)) = client_node.inbound.recv_timeout(Duration::from_millis(2))
        {
            if let Ok(msg) = ProtocolMsg::from_bytes(&frame) {
                client.on_message(ReplicaId(peer as u32), msg);
            }
        }
        client.on_tick();
        *commits += client.take_completed().len();
    };
    while t0.elapsed() < window {
        drive_client(&mut client, &mut commits, &mut submitted, &mut scratch);
    }
    let elapsed = t0.elapsed();
    let frames = load_frames.load(Ordering::Relaxed) - frames0;
    let threads = proc_self_status("Threads:").unwrap_or(0);
    let rss_mb = proc_self_status("VmRSS:").unwrap_or(0) as f64 / 1024.0;

    // Stop the storm; give the client a short load-free grace window to
    // land at least one in-flight commit (proof the protocol survived).
    stop_load.store(true, Ordering::SeqCst);
    let dialed = driver.join().expect("driver");
    let grace = Instant::now();
    while commits == 0 && grace.elapsed() < Duration::from_secs(10) {
        drive_client(&mut client, &mut commits, &mut submitted, &mut scratch);
    }
    stop.store(true, Ordering::SeqCst);
    client_node.shutdown();
    for h in handles {
        let _ = h.join();
    }

    assert!(
        commits >= 1,
        "the protocol client must commit transactions on the flooded cluster"
    );
    if min_conns > 0 {
        assert!(
            connections >= min_conns,
            "cluster held {connections} concurrent load connections (dialed {dialed}), \
             need >= {min_conns}"
        );
    }
    C10kResult {
        connections,
        frames_s: frames as f64 / elapsed.as_secs_f64(),
        threads,
        rss_mb,
        commits,
    }
}

fn run_c10k_quick() -> C10kResult {
    let (conns, secs) = QUICK_C10K;
    run_c10k(conns, secs, 0)
}

/// Result of one verify-stage (admission) microbench run.
struct VerifyResult {
    /// The pool size `ProtocolParams::default()` resolves to on this
    /// machine (what a replica actually constructs).
    pool_threads: usize,
    /// Sequential Ed25519 batch verification, signatures per second.
    serial_sigs_s: f64,
    /// Same jobs fanned out over the resolved worker pool.
    pooled_sigs_s: f64,
    /// Same jobs over a pinned 4-thread pool (machine-independent
    /// evidence the fan-out path works even on a 1-core runner).
    pool4_sigs_s: f64,
    /// Tasks the pinned pool executed — non-zero proves the chunks were
    /// dispatched to workers rather than verified inline.
    pool4_tasks: u64,
}

/// The quick-mode verify workload: job count for the CI smoke run and
/// the full run's committed `quick_ref_verify_sigs_per_sec` reference.
const QUICK_VERIFY_JOBS: usize = 256;

/// The verify-stage microbench: the admission stage's unit of work —
/// a slice of Ed25519 [`VerifyJob`]s — checked sequentially and through
/// the persistent worker pool (the same `verify_batch_indices_on` fan-out
/// the replica uses for batched client-signature admission).
fn run_verify(jobs_n: usize) -> VerifyResult {
    let kp = KeyPair::from_label("bench-verify");
    let key = kp.public();
    let jobs: Vec<VerifyJob> = (0..jobs_n)
        .map(|i| {
            let msg = format!("verify-job-{i}").into_bytes();
            let sig = kp.sign(&msg);
            VerifyJob { key, msg, sig }
        })
        .collect();

    let t0 = Instant::now();
    let failed = verify_batch_indices(&jobs);
    let serial_sigs_s = jobs_n as f64 / t0.elapsed().as_secs_f64();
    assert!(failed.is_empty(), "bench signatures must verify");

    let pool_threads = ProtocolParams::default().resolved_pool_threads();
    let pool = WorkerPool::new(pool_threads);
    let t0 = Instant::now();
    let failed = verify_batch_indices_on(&pool, &jobs);
    let pooled_sigs_s = jobs_n as f64 / t0.elapsed().as_secs_f64();
    assert!(failed.is_empty(), "pooled verification must agree with serial");

    let pool4 = WorkerPool::new(4);
    let t0 = Instant::now();
    let failed = verify_batch_indices_on(&pool4, &jobs);
    let pool4_sigs_s = jobs_n as f64 / t0.elapsed().as_secs_f64();
    assert!(failed.is_empty(), "pooled verification must agree with serial");
    let pool4_tasks = pool4.tasks_completed();
    assert!(pool4_tasks > 0, "the 4-thread pool must actually dispatch tasks");

    VerifyResult { pool_threads, serial_sigs_s, pooled_sigs_s, pool4_sigs_s, pool4_tasks }
}

/// The full-mode c10k workload: 2,400 concurrent connections (the
/// acceptance floor is 2,000) over a 10-second window.
const FULL_C10K: (usize, u64, usize) = (2_400, 10, 2_000);

fn main() {
    let cfg = config();
    if cfg.c10k_only {
        let (conns, secs, floor) =
            if cfg.quick { (QUICK_C10K.0, QUICK_C10K.1, 0) } else { FULL_C10K };
        println!("=== pipeline_throughput --mode=c10k (4 replicas over TCP) ===");
        let r = run_c10k(conns, secs, floor);
        println!(
            "c10k: connections={} frames_s={:.1} threads={} rss_mb={:.1} commits={}",
            r.connections, r.frames_s, r.threads, r.rss_mb, r.commits
        );
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"c10k\",\n  \
             \"quick\": {},\n  \"c10k_connections\": {},\n  \
             \"c10k_frames_per_sec\": {:.1},\n  \"c10k_threads\": {},\n  \
             \"c10k_rss_mb\": {:.1},\n  \"c10k_protocol_commits\": {}\n}}\n",
            cfg.quick, r.connections, r.frames_s, r.threads, r.rss_mb, r.commits
        );
        let path = "target/experiments/pipeline_c10k.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    if cfg.sync_only {
        let (batches, batch_size, accounts) =
            if cfg.quick { QUICK_SYNC } else { (40, 100, cfg.accounts) };
        println!("=== pipeline_throughput --mode=sync (4 replicas, SmallBank) ===");
        let r = run_sync(batches, batch_size, accounts);
        println!(
            "sync: pages={} bytes={} pages_s={:.1} bytes_s={:.1}",
            r.pages, r.bytes, r.pages_s, r.bytes_s
        );
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"sync\",\n  \
             \"quick\": {},\n  \"sync_pages\": {},\n  \"sync_bytes\": {},\n  \
             \"sync_pages_per_sec\": {:.1},\n  \"sync_bytes_per_sec\": {:.1}\n}}\n",
            cfg.quick, r.pages, r.bytes, r.pages_s, r.bytes_s
        );
        let path = "target/experiments/pipeline_sync.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    if cfg.recovery_only {
        let (batches, batch_size, accounts) =
            if cfg.quick { QUICK_RECOVERY } else { FULL_RECOVERY };
        println!("=== pipeline_throughput --mode=recovery (4 replicas, SmallBank) ===");
        let r = run_recovery(batches, batch_size, accounts);
        println!(
            "recovery: genesis_bytes={} ({} pages) ckpt_bytes={} ({} pages) ckpt_seed={} \
             seeded_local_bytes={} (prefix {})",
            r.genesis_bytes,
            r.genesis_pages,
            r.ckpt_bytes,
            r.ckpt_pages,
            r.ckpt_seed,
            r.seeded_local_bytes,
            r.seeded_local_prefix_bytes
        );
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"recovery\",\n  \
             \"quick\": {},\n  \"recovery_genesis_pages\": {},\n  \
             \"recovery_genesis_bytes\": {},\n  \"recovery_ckpt_pages\": {},\n  \
             \"recovery_ckpt_bytes\": {},\n  \"recovery_ckpt_seed\": {},\n  \
             \"recovery_seeded_local_bytes\": {},\n  \
             \"recovery_seeded_local_prefix_bytes\": {}\n}}\n",
            cfg.quick,
            r.genesis_pages,
            r.genesis_bytes,
            r.ckpt_pages,
            r.ckpt_bytes,
            r.ckpt_seed,
            r.seeded_local_bytes,
            r.seeded_local_prefix_bytes
        );
        let path = "target/experiments/pipeline_recovery.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    if cfg.refetch_only {
        let (batches, batch_size, accounts, lookups) =
            if cfg.quick { QUICK_REFETCH } else { (40, 100, cfg.accounts, 200_000) };
        println!("=== pipeline_throughput --mode=refetch (4 replicas, SmallBank) ===");
        let ops_s = run_refetch(batches, batch_size, accounts, lookups);
        println!("refetch: lookups={lookups} ops_s={ops_s:.1}");
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"mode\": \"refetch\",\n  \
             \"quick\": {},\n  \"refetch_lookups\": {lookups},\n  \
             \"refetch_ops_per_sec\": {ops_s:.1}\n}}\n",
            cfg.quick
        );
        let path = "target/experiments/pipeline_refetch.json";
        std::fs::write(path, json).expect("write bench json");
        println!("[written {path}]");
        return;
    }
    println!("=== pipeline_throughput (4 replicas, SmallBank) ===");
    println!(
        "batches={} batch_size={} accounts={} shards={} quick={}",
        cfg.batches, cfg.batch_size, cfg.accounts, cfg.shards, cfg.quick
    );

    let baseline = run_mode(cfg.batches, cfg.batch_size, cfg.accounts, 0, cfg.shards);
    println!(
        "baseline  (skew 0%):  ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
        baseline.ops_s, baseline.p50_ms, baseline.p99_ms
    );

    let (path, json) = if cfg.quick {
        // Quick mode is the CI smoke: the baseline throughput mode plus
        // tiny refetch and sync runs (the comparison script reads the
        // ops/s and bytes/s keys); the numbers are meaningless for the
        // trajectory — never overwrite the committed repo-root baseline
        // with them.
        let refetch = run_refetch_quick();
        println!("refetch   (quick):    ops_s={refetch:.1}");
        let sync = run_sync_quick();
        println!("sync      (quick):    pages_s={:.1} bytes_s={:.1}", sync.pages_s, sync.bytes_s);
        let recovery = run_recovery_quick();
        println!(
            "recovery  (quick):    genesis_bytes={} ckpt_bytes={} ckpt_seed={} \
             seeded_local_bytes={} (prefix {})",
            recovery.genesis_bytes,
            recovery.ckpt_bytes,
            recovery.ckpt_seed,
            recovery.seeded_local_bytes,
            recovery.seeded_local_prefix_bytes
        );
        let c10k = run_c10k_quick();
        println!(
            "c10k      (quick):    connections={} frames_s={:.1} threads={}",
            c10k.connections, c10k.frames_s, c10k.threads
        );
        let verify = run_verify(QUICK_VERIFY_JOBS);
        println!(
            "verify    (quick):    pool_threads={} serial_sigs_s={:.1} pooled_sigs_s={:.1}",
            verify.pool_threads, verify.serial_sigs_s, verify.pooled_sigs_s
        );
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"quick\": true,\n  \
             \"ops_per_sec\": {:.1},\n  \"refetch_ops_per_sec\": {refetch:.1},\n  \
             \"sync_bytes_per_sec\": {:.1},\n  \
             \"recovery_genesis_bytes\": {},\n  \
             \"recovery_ckpt_bytes\": {},\n  \
             \"recovery_seeded_local_bytes\": {},\n  \
             \"recovery_seeded_local_prefix_bytes\": {},\n  \
             \"c10k_frames_per_sec\": {:.1},\n  \
             \"pool_threads\": {},\n  \
             \"verify_sigs_per_sec\": {:.1}\n}}\n",
            baseline.ops_s,
            sync.bytes_s,
            recovery.genesis_bytes,
            recovery.ckpt_bytes,
            recovery.seeded_local_bytes,
            recovery.seeded_local_prefix_bytes,
            c10k.frames_s,
            verify.pool_threads,
            verify.pooled_sigs_s
        );
        ("target/experiments/pipeline_quick.json", json)
    } else {
        let contended =
            run_mode(cfg.batches, cfg.batch_size, cfg.accounts, cfg.skew_pct, cfg.shards);
        println!(
            "contended (skew {}%): ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
            cfg.skew_pct, contended.ops_s, contended.p50_ms, contended.p99_ms
        );
        // The receipt-serving read path, at the full window size.
        let refetch_lookups = 200_000usize;
        let refetch = run_refetch(cfg.batches, cfg.batch_size, cfg.accounts, refetch_lookups);
        println!("refetch   (serving):  lookups={refetch_lookups} ops_s={refetch:.1}");
        // The recovery path, at the full window size.
        let sync = run_sync(cfg.batches, cfg.batch_size, cfg.accounts);
        println!(
            "sync      (recovery): pages={} bytes={} pages_s={:.1} bytes_s={:.1}",
            sync.pages, sync.bytes, sync.pages_s, sync.bytes_s
        );
        // The recovery-strategy comparison, at the full window size:
        // genesis replay vs checkpoint-seeded fast path over identical
        // histories (`--mode recovery`).
        let (rec_batches, rec_size, rec_accounts) = FULL_RECOVERY;
        let recovery = run_recovery(rec_batches, rec_size, rec_accounts);
        println!(
            "recovery  (ckpt):     genesis_bytes={} ({} pages) ckpt_bytes={} ({} pages) \
             ckpt_seed={} seeded_local_bytes={} (prefix {})",
            recovery.genesis_bytes,
            recovery.genesis_pages,
            recovery.ckpt_bytes,
            recovery.ckpt_pages,
            recovery.ckpt_seed,
            recovery.seeded_local_bytes,
            recovery.seeded_local_prefix_bytes
        );
        // The transport path, at full scale (the 2,000-connection floor
        // is enforced here — a thread-per-connection transport cannot
        // hold this with O(nodes) threads).
        let (c_conns, c_secs, c_floor) = FULL_C10K;
        let c10k = run_c10k(c_conns, c_secs, c_floor);
        println!(
            "c10k      (transport): connections={} frames_s={:.1} threads={} rss_mb={:.1} commits={}",
            c10k.connections, c10k.frames_s, c10k.threads, c10k.rss_mb, c10k.commits
        );
        // The admission verify stage, serial vs pooled — the committed
        // evidence the worker pool engages and what it buys.
        let verify = run_verify(1_024);
        println!(
            "verify    (admission): pool_threads={} serial_sigs_s={:.1} pooled_sigs_s={:.1} \
             pool4_sigs_s={:.1} pool4_tasks={}",
            verify.pool_threads,
            verify.serial_sigs_s,
            verify.pooled_sigs_s,
            verify.pool4_sigs_s,
            verify.pool4_tasks
        );
        // Also measure the quick configurations: the committed references
        // CI's quick smoke run is compared against (warn-only).
        let quick_ref = run_mode(5, 20, 1_000, 0, cfg.shards);
        let quick_refetch = run_refetch_quick();
        let quick_sync = run_sync_quick();
        let quick_recovery = run_recovery_quick();
        let quick_c10k = run_c10k_quick();
        let quick_verify = run_verify(QUICK_VERIFY_JOBS);
        println!(
            "quick-ref (CI smoke): ops_s={:.1} refetch_ops_s={quick_refetch:.1} \
             sync_bytes_s={:.1} c10k_frames_s={:.1} verify_sigs_s={:.1}",
            quick_ref.ops_s, quick_sync.bytes_s, quick_c10k.frames_s, quick_verify.pooled_sigs_s
        );
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"replicas\": 4,\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \"accounts\": {},\n  \
             \"quick\": false,\n  \"ops_per_sec\": {:.1},\n  \
             \"batch_p50_ms\": {:.3},\n  \"batch_p99_ms\": {:.3},\n  \
             \"contended_skew_pct\": {},\n  \"contended_ops_per_sec\": {:.1},\n  \
             \"contended_batch_p50_ms\": {:.3},\n  \"contended_batch_p99_ms\": {:.3},\n  \
             \"refetch_lookups\": {refetch_lookups},\n  \
             \"refetch_ops_per_sec\": {refetch:.1},\n  \
             \"sync_pages\": {},\n  \"sync_bytes\": {},\n  \
             \"sync_pages_per_sec\": {:.1},\n  \"sync_bytes_per_sec\": {:.1},\n  \
             \"recovery_genesis_pages\": {},\n  \"recovery_genesis_bytes\": {},\n  \
             \"recovery_ckpt_pages\": {},\n  \"recovery_ckpt_bytes\": {},\n  \
             \"recovery_ckpt_seed\": {},\n  \
             \"recovery_seeded_local_bytes\": {},\n  \
             \"recovery_seeded_local_prefix_bytes\": {},\n  \
             \"c10k_connections\": {},\n  \"c10k_frames_per_sec\": {:.1},\n  \
             \"c10k_threads\": {},\n  \"c10k_rss_mb\": {:.1},\n  \
             \"c10k_protocol_commits\": {},\n  \
             \"pool_threads\": {},\n  \
             \"verify_sigs_per_sec_serial\": {:.1},\n  \
             \"verify_sigs_per_sec\": {:.1},\n  \
             \"verify_pool4_sigs_per_sec\": {:.1},\n  \
             \"verify_pool4_tasks\": {},\n  \
             \"quick_ref_ops_per_sec\": {:.1},\n  \
             \"quick_ref_refetch_ops_per_sec\": {quick_refetch:.1},\n  \
             \"quick_ref_sync_bytes_per_sec\": {:.1},\n  \
             \"quick_ref_recovery_genesis_bytes\": {},\n  \
             \"quick_ref_recovery_ckpt_bytes\": {},\n  \
             \"quick_ref_recovery_seeded_local_bytes\": {},\n  \
             \"quick_ref_c10k_frames_per_sec\": {:.1},\n  \
             \"quick_ref_verify_sigs_per_sec\": {:.1}\n}}\n",
            cfg.batches,
            cfg.batch_size,
            cfg.accounts,
            baseline.ops_s,
            baseline.p50_ms,
            baseline.p99_ms,
            cfg.skew_pct,
            contended.ops_s,
            contended.p50_ms,
            contended.p99_ms,
            sync.pages,
            sync.bytes,
            sync.pages_s,
            sync.bytes_s,
            recovery.genesis_pages,
            recovery.genesis_bytes,
            recovery.ckpt_pages,
            recovery.ckpt_bytes,
            recovery.ckpt_seed,
            recovery.seeded_local_bytes,
            recovery.seeded_local_prefix_bytes,
            c10k.connections,
            c10k.frames_s,
            c10k.threads,
            c10k.rss_mb,
            c10k.commits,
            verify.pool_threads,
            verify.serial_sigs_s,
            verify.pooled_sigs_s,
            verify.pool4_sigs_s,
            verify.pool4_tasks,
            quick_ref.ops_s,
            quick_sync.bytes_s,
            quick_recovery.genesis_bytes,
            quick_recovery.ckpt_bytes,
            quick_recovery.seeded_local_bytes,
            quick_c10k.frames_s,
            quick_verify.pooled_sigs_s
        );
        ("BENCH_pipeline.json", json)
    };
    std::fs::write(path, json).expect("write bench json");
    println!("[written {path}]");
}
