//! Pipeline throughput baseline: the perf trajectory for the staged
//! replica hot path.
//!
//! Drives a 4-replica deterministic sim cluster (`DetCluster` — single
//! threaded, so the number measures the *CPU cost of the normal-case
//! pipeline*: admission, batch verification, execution, Merkle/ledger
//! appends, reply emission) through N SmallBank batches and writes
//! `BENCH_pipeline.json` at the repo root. Two workload modes are
//! measured: **baseline** (uniform accounts, skew 0%) and **contended**
//! (the `--skew` knob routes that percentage of account draws to the hot
//! set — see `ia_ccf_smallbank::Workload::with_skew`), so both the
//! conflict-free and the conflict-heavy paths of sharded execution have
//! committed numbers. Later PRs must beat them.
//!
//! Knobs:
//!
//! * `--skew=N` / `IACCF_SKEW` — contended-mode skew percent (default 90);
//! * `--shards=N` / `IACCF_SHARDS` — execution shard count (default 0 =
//!   auto: the machine's available parallelism);
//! * `PIPELINE_BENCH_QUICK=1` — tiny baseline-mode-only run for CI smoke
//!   (seconds; written to `target/experiments/pipeline_quick.json` so a
//!   local smoke run can't clobber the committed baseline, and only the
//!   baseline mode since that is all the comparison script reads). The
//!   full run *also* measures
//!   the quick configuration and records it as `quick_ref_ops_per_sec`,
//!   the committed reference CI compares its own quick run against
//!   (`scripts/check_bench_baseline.sh`, warn-only);
//! * `IACCF_ACCOUNTS` — SmallBank account count (default 10 000).

use std::sync::Arc;
use std::time::Instant;

use bench::accounts;
use ia_ccf_core::ProtocolParams;
use ia_ccf_sim::metrics::Histogram;
use ia_ccf_sim::{ClusterSpec, DetCluster};

struct BenchConfig {
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
    quick: bool,
}

fn knob(cli: &str, env: &str) -> Option<u64> {
    let from_cli = std::env::args().find_map(|a| {
        a.strip_prefix(&format!("--{cli}=")).and_then(|v| v.parse().ok())
    });
    from_cli.or_else(|| std::env::var(env).ok().and_then(|v| v.parse().ok()))
}

fn config() -> BenchConfig {
    let quick = std::env::var_os("PIPELINE_BENCH_QUICK").is_some();
    let skew_pct = knob("skew", "IACCF_SKEW").unwrap_or(90).min(100) as u8;
    let shards = knob("shards", "IACCF_SHARDS").unwrap_or(0) as usize;
    if quick {
        BenchConfig { batches: 5, batch_size: 20, accounts: 1_000, skew_pct, shards, quick }
    } else {
        BenchConfig { batches: 40, batch_size: 100, accounts: accounts(), skew_pct, shards, quick }
    }
}

struct ModeResult {
    ops_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One measured mode: a fresh primed cluster driven through
/// `batches × batch_size` transactions generated at `skew_pct`.
fn run_mode(
    batches: usize,
    batch_size: usize,
    accounts: u64,
    skew_pct: u8,
    shards: usize,
) -> ModeResult {
    let n_clients = 4;
    let params = ProtocolParams { execution_shards: shards, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, n_clients, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));

    // Pre-populate identical SmallBank state on every replica (stands in
    // for a bulk-load phase; see `Replica::prime_kv`).
    let mut seed_kv = ia_ccf_kv::KvStore::new();
    ia_ccf_smallbank::populate(&mut seed_kv, accounts, 10_000);
    let cp = seed_kv.checkpoint();
    let ids: Vec<_> = cluster.replicas.keys().copied().collect();
    for id in ids {
        cluster.replicas.get_mut(&id).expect("replica").inner.prime_kv(&cp);
    }

    let mut workloads: Vec<ia_ccf_smallbank::Workload> = (0..n_clients)
        .map(|i| ia_ccf_smallbank::Workload::with_skew(accounts, 7_000 + i as u64, skew_pct))
        .collect();

    // Warm-up: one small batch outside the measured window.
    for (ci, w) in workloads.iter_mut().enumerate() {
        let op = w.next_op();
        cluster.submit(spec.clients[ci].0, op.proc, op.args);
    }
    assert!(cluster.run_until_finished(n_clients, 200), "warm-up stalled");
    let warmed = cluster.finished.len();

    // Measured run: `batches` rounds of `batch_size` transactions, each
    // submitted together and driven to receipt completion.
    let mut batch_lat = Histogram::new();
    let mut done = warmed;
    let t0 = Instant::now();
    for _ in 0..batches {
        let tb = Instant::now();
        for k in 0..batch_size {
            let ci = k % n_clients;
            let op = workloads[ci].next_op();
            cluster.submit(spec.clients[ci].0, op.proc, op.args);
        }
        done += batch_size;
        assert!(
            cluster.run_until_finished(done, 2_000),
            "batch stalled: {}/{done} finished",
            cluster.finished.len()
        );
        batch_lat.record(tb.elapsed());
    }
    let elapsed = t0.elapsed();
    cluster.assert_ledgers_consistent();

    let total_ops = (batches * batch_size) as u64;
    ModeResult {
        ops_s: total_ops as f64 / elapsed.as_secs_f64(),
        p50_ms: batch_lat.p50_us() as f64 / 1000.0,
        p99_ms: batch_lat.p99_us() as f64 / 1000.0,
    }
}

fn main() {
    let cfg = config();
    println!("=== pipeline_throughput (4 replicas, SmallBank) ===");
    println!(
        "batches={} batch_size={} accounts={} shards={} quick={}",
        cfg.batches, cfg.batch_size, cfg.accounts, cfg.shards, cfg.quick
    );

    let baseline = run_mode(cfg.batches, cfg.batch_size, cfg.accounts, 0, cfg.shards);
    println!(
        "baseline  (skew 0%):  ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
        baseline.ops_s, baseline.p50_ms, baseline.p99_ms
    );

    let (path, json) = if cfg.quick {
        // Quick mode is the CI smoke: only the baseline mode runs (the
        // comparison script reads only its ops/s), and the numbers are
        // meaningless for the trajectory — never overwrite the committed
        // repo-root baseline with them.
        let _ = std::fs::create_dir_all("target/experiments");
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"quick\": true,\n  \
             \"ops_per_sec\": {:.1}\n}}\n",
            baseline.ops_s
        );
        ("target/experiments/pipeline_quick.json", json)
    } else {
        let contended =
            run_mode(cfg.batches, cfg.batch_size, cfg.accounts, cfg.skew_pct, cfg.shards);
        println!(
            "contended (skew {}%): ops_s={:.1}  batch_p50_ms={:.2}  batch_p99_ms={:.2}",
            cfg.skew_pct, contended.ops_s, contended.p50_ms, contended.p99_ms
        );
        // Also measure the quick configuration: the committed reference
        // CI's quick smoke run is compared against (warn-only).
        let quick_ref = run_mode(5, 20, 1_000, 0, cfg.shards);
        println!("quick-ref (CI smoke): ops_s={:.1}", quick_ref.ops_s);
        let json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"replicas\": 4,\n  \
             \"batches\": {},\n  \"batch_size\": {},\n  \"accounts\": {},\n  \
             \"quick\": false,\n  \"ops_per_sec\": {:.1},\n  \
             \"batch_p50_ms\": {:.3},\n  \"batch_p99_ms\": {:.3},\n  \
             \"contended_skew_pct\": {},\n  \"contended_ops_per_sec\": {:.1},\n  \
             \"contended_batch_p50_ms\": {:.3},\n  \"contended_batch_p99_ms\": {:.3},\n  \
             \"quick_ref_ops_per_sec\": {:.1}\n}}\n",
            cfg.batches,
            cfg.batch_size,
            cfg.accounts,
            baseline.ops_s,
            baseline.p50_ms,
            baseline.p99_ms,
            cfg.skew_pct,
            contended.ops_s,
            contended.p50_ms,
            contended.p99_ms,
            quick_ref.ops_s
        );
        ("BENCH_pipeline.json", json)
    };
    std::fs::write(path, json).expect("write bench json");
    println!("[written {path}]");
}
