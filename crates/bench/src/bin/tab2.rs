//! Tab. 2: request latency under low load (WAN) — IA-CCF vs HotStuff.
//!
//! The paper: IA-CCF 183 ms average / 194 ms p99 / 2 network round trips;
//! HotStuff 340 ms / 393 ms / 4.5 round trips. The shape to reproduce:
//! HotStuff's client latency ≈ 2× IA-CCF's, because IA-CCF replies after
//! two round trips (request → pre-prepare → prepare → reply) while
//! HotStuff needs a three-chain.

use bench::{duration, emit, run_iaccf_smallbank, Row};
use ia_ccf_baselines::run_hotstuff;
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::ClusterSpec;

fn main() {
    let wan = LatencyModel::Wan;
    let rtt_ms = wan.rtt().as_millis() as f64;

    // IA-CCF, one outstanding request (low load). The view-change timer
    // must exceed the WAN round trip (the paper's timeouts are seconds).
    let mut params = ProtocolParams::full();
    params.view_timeout_ticks = 2_000;
    let spec = ClusterSpec::new(4, 1, params)
        .with_config(|c| c.checkpoint_interval = 10_000);
    let cfg = RtConfig {
        latency: wan,
        duration: duration().max(std::time::Duration::from_secs(3)),
        outstanding_per_client: 1,
        ..RtConfig::default()
    };
    let report = run_iaccf_smallbank(&spec, &cfg, 1000);
    let mut lat = report.latency.clone();
    let ia_avg = lat.mean_us() as f64 / 1000.0;
    let ia_p99 = lat.p99_us() as f64 / 1000.0;

    // HotStuff, same conditions.
    let hs = run_hotstuff(4, 1, 1, 64, wan, cfg.duration);
    let mut hs_lat = hs.latency.clone();
    let hs_avg = hs_lat.mean_us() as f64 / 1000.0;
    let hs_p99 = hs_lat.p99_us() as f64 / 1000.0;

    let rows = vec![
        Row::new(
            "IA-CCF",
            &[("avg_ms", ia_avg), ("p99_ms", ia_p99), ("round_trips", ia_avg / rtt_ms)],
        ),
        Row::new(
            "HotStuff",
            &[("avg_ms", hs_avg), ("p99_ms", hs_p99), ("round_trips", hs_avg / rtt_ms)],
        ),
    ];
    emit("tab2", "Tab. 2: WAN low-load latency", &rows);
    println!("\npaper: IA-CCF 183ms avg / 194ms p99 / 2 RTT; HotStuff 340ms / 393ms / 4.5 RTT");
    println!("shape check: HotStuff avg ≈ 2x IA-CCF avg (ratio here: {:.2})", hs_avg / ia_avg);
}
