//! Fig. 5: transaction throughput vs replica count.
//!
//! Series: IA-CCF (LAN), IA-CCF (WAN), HotStuff (WAN),
//! IA-CCF-PeerReview (WAN). The paper's shape: IA-CCF throughput falls
//! with N (each replica verifies more signatures); the LAN and WAN curves
//! nearly coincide (pipelining hides latency); HotStuff sits well below
//! IA-CCF; PeerReview below HotStuff.

use bench::{accounts, duration, emit, max_n, run_iaccf_smallbank, Row};
use ia_ccf_baselines::run_hotstuff;
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::ClusterSpec;

fn main() {
    let account_count = accounts();
    let mut ns: Vec<usize> = vec![4, 7, 10, 16, 31, 64];
    ns.retain(|n| *n <= max_n());
    let mut rows = Vec::new();

    for &n in &ns {
        for &(label, latency) in
            &[("IA-CCF LAN", LatencyModel::Lan), ("IA-CCF WAN", LatencyModel::Wan)]
        {
            let mut params = ProtocolParams::full();
            params.view_timeout_ticks = 2_000; // above the WAN round trip
            let spec = ClusterSpec::new(n, 4, params).with_config(|c| {
                c.checkpoint_interval = 10_000;
                c.pipeline_depth = if latency == LatencyModel::Wan { 6 } else { 2 };
            });
            let cfg = RtConfig {
                latency,
                duration: duration(),
                outstanding_per_client: 64,
                ..RtConfig::default()
            };
            let report = run_iaccf_smallbank(&spec, &cfg, account_count);
            rows.push(Row::new(
                format!("{label} N={n}"),
                &[("tx_s", report.throughput().per_sec())],
            ));
        }

        let hs = run_hotstuff(n, 4, 64, 300, LatencyModel::Wan, duration());
        rows.push(Row::new(format!("HotStuff WAN N={n}"), &[("tx_s", hs.tx_per_sec())]));

        let mut pr_params = ProtocolParams::peer_review();
        pr_params.view_timeout_ticks = 2_000;
        let spec = ClusterSpec::new(n, 4, pr_params).with_config(|c| {
            c.checkpoint_interval = 10_000;
            c.pipeline_depth = 6;
        });
        let cfg = RtConfig {
            latency: LatencyModel::Wan,
            duration: duration(),
            outstanding_per_client: 64,
            ..RtConfig::default()
        };
        let report = run_iaccf_smallbank(&spec, &cfg, account_count);
        rows.push(Row::new(
            format!("IA-CCF-PeerReview WAN N={n}"),
            &[("tx_s", report.throughput().per_sec())],
        ));
    }

    emit("fig5", "Fig. 5: throughput vs replica count", &rows);
    println!("\npaper shape: IA-CCF decreases with N; LAN ≈ WAN; HotStuff below IA-CCF (71% lower at N=64); PeerReview lowest");
}
