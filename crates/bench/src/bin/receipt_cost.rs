//! §6.3: receipt validation cost.
//!
//! Two components: (i) the Merkle path in the per-batch tree `G` —
//! 2.1/2.3 µs for batches of 300/800 in the paper, logarithmic and tiny;
//! (ii) signature verification — 18/52 ms for f = 1/f = 3 on secp256k1
//! (ours is Ed25519, absolute numbers differ; the f-scaling shape holds).

use std::time::Instant;

use bench::{emit, Row};
use ia_ccf_crypto::hash_bytes;
use ia_ccf_types::config::testutil::test_config;
use ia_ccf_types::receipt::testutil::make_tx_receipts;
use ia_ccf_types::{Digest, LedgerIdx, SeqNum, TxResult, View};

fn batch_receipt(n_replicas: usize, batch: usize) -> (ia_ccf_types::Configuration, ia_ccf_types::Receipt) {
    let (config, replica_keys, _) = test_config(n_replicas);
    let entries: Vec<(Digest, LedgerIdx, TxResult)> = (0..batch)
        .map(|i| {
            (
                hash_bytes(format!("t{i}").as_bytes()),
                LedgerIdx(100 + i as u64),
                TxResult { ok: true, output: vec![1], write_set_digest: hash_bytes(b"ws") },
            )
        })
        .collect();
    let mut receipts = make_tx_receipts(
        &config,
        &replica_keys,
        View(0),
        SeqNum(9),
        hash_bytes(b"m"),
        LedgerIdx(0),
        Digest::zero(),
        &entries,
    );
    (config, receipts.swap_remove(batch / 2))
}

fn main() {
    let mut rows = Vec::new();

    // (i) Path verification only.
    for &batch in &[300usize, 800] {
        let (_, receipt) = batch_receipt(4, batch);
        let iters = 20_000;
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = receipt.implied_root_g().expect("path ok");
        }
        let us = t0.elapsed().as_micros() as f64 / iters as f64;
        rows.push(Row::new(format!("merkle path, batch={batch}"), &[("us", us)]));
    }

    // (ii) Full verification (dominated by signatures).
    for &(n, f) in &[(4usize, 1u64), (10, 3)] {
        let (config, receipt) = batch_receipt(n, 300);
        let iters = 50;
        let t0 = Instant::now();
        for _ in 0..iters {
            receipt.verify(&config).expect("valid");
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / iters as f64;
        rows.push(Row::new(format!("full verify, f={f}"), &[("ms", ms)]));
    }

    emit("receipt_cost", "§6.3: receipt validation cost", &rows);
    println!("\npaper: path 2.1/2.3us for 300/800; signatures 18/52ms for f=1/f=3 (secp256k1)");
    println!("shape checks: path cost ~flat in batch size (log); verify grows ~2.5-3x from f=1 to f=3");
}
