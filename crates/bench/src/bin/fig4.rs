//! Fig. 4: transaction throughput vs latency, f = 1 (4 replicas).
//!
//! Systems: IA-CCF, IA-CCF-NoReceipt, IA-CCF-PeerReview, Fabric-like.
//! The paper's shape: IA-CCF ≈ NoReceipt (receipts ~3% cost),
//! PeerReview an order of magnitude below, Fabric far below that with
//! much higher latency. Load increases along each curve via the
//! closed-loop window.

use std::sync::Arc;

use bench::{accounts, duration, emit, noop_ops, run_iaccf_smallbank, smallbank_ops, Row};
use ia_ccf_baselines::run_fabric;
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::ClusterSpec;

fn main() {
    let _ = noop_ops(); // touch, keeps the helper exercised
    let accounts = accounts();
    let windows = [1usize, 8, 64, 256];
    let mut rows = Vec::new();

    let variants = [
        ("IA-CCF", ProtocolParams::full(), true),
        ("IA-CCF-NoReceipt", ProtocolParams::no_receipt(), false),
        ("IA-CCF-PeerReview", ProtocolParams::peer_review(), true),
    ];
    for (label, params, receipts) in &variants {
        let receipts = *receipts;
        for &w in &windows {
            let spec = ClusterSpec::new(4, 4, params.clone())
                .with_config(|c| c.checkpoint_interval = 10_000);
            let cfg = RtConfig {
                latency: LatencyModel::Zero,
                duration: duration(),
                outstanding_per_client: w,
                clients_require_receipts: receipts,
                ..RtConfig::default()
            };
            let report = run_iaccf_smallbank(&spec, &cfg, accounts);
            let mut lat = report.latency.clone();
            rows.push(Row::new(
                format!("{label} w={w}"),
                &[
                    ("tx_s", report.throughput().per_sec()),
                    ("lat_ms", lat.mean_us() as f64 / 1000.0),
                    ("p99_ms", lat.p99_us() as f64 / 1000.0),
                ],
            ));
        }
    }

    for &w in &windows {
        let report = run_fabric(
            4,
            4,
            w,
            256,
            LatencyModel::Zero,
            duration(),
            Arc::new(ia_ccf_smallbank::SmallBankApp),
            |kv| ia_ccf_smallbank::populate(kv, accounts, 10_000),
            smallbank_ops(accounts),
        );
        let mut lat = report.latency.clone();
        rows.push(Row::new(
            format!("Fabric-like w={w}"),
            &[
                ("tx_s", report.tx_per_sec()),
                ("lat_ms", lat.mean_us() as f64 / 1000.0),
                ("p99_ms", lat.p99_us() as f64 / 1000.0),
            ],
        ));
    }

    emit("fig4", "Fig. 4: throughput vs latency (f=1)", &rows);
    println!("\npaper shape: IA-CCF 47.8k tx/s ≈ NoReceipt 51.2k (−3%); PeerReview ~10x lower; Fabric 1.2k with ~1.9s latency");
}
