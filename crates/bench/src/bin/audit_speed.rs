//! §6.5: ledger auditing speed vs execution speed.
//!
//! The paper: auditing is 23% faster than execution at f = 1 and 67%
//! faster at f = 4, because the auditor has no network, no message
//! signing and no ledger writes, and verifies only 2f + 1 signatures per
//! batch; the bottleneck is client-request signature verification.
//!
//! We build a ledger with the deterministic cluster, then time the full
//! audit (well-formedness + replay) against the wall-clock execution rate
//! of the threaded cluster on the same workload.

use std::sync::Arc;
use std::time::Instant;

use bench::{duration, emit, smallbank_ops, Row};
use ia_ccf_audit::{AuditOutcome, Auditor, LedgerPackage};
use ia_ccf_core::ProtocolParams;
use ia_ccf_governance::chain::GovernanceChain;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{ReplicaId, SeqNum};

fn measure(n: usize, f_label: u64, rows: &mut Vec<Row>) {
    let accounts = 2_000u64;

    // Execution rate: threaded cluster, SmallBank.
    let spec = ClusterSpec::new(n, 4, ProtocolParams::full())
        .with_config(|c| c.checkpoint_interval = 10_000);
    let cfg = RtConfig {
        latency: LatencyModel::Zero,
        duration: duration(),
        outstanding_per_client: 64,
        ..RtConfig::default()
    };
    let report = bench::run_iaccf_smallbank(&spec, &cfg, accounts);
    let exec_tx_s = report.throughput().per_sec();

    // Audit rate: deterministic cluster builds a ledger, the auditor
    // replays it.
    let det_spec = ClusterSpec::new(n, 4, ProtocolParams::full())
        .with_config(|c| c.checkpoint_interval = 10_000);
    let app = Arc::new(ia_ccf_smallbank::SmallBankApp);
    let mut cluster = DetCluster::new(&det_spec, app.clone());
    let ops = smallbank_ops(accounts);
    let total_tx = 600usize;
    for i in 0..total_tx {
        let (proc, args) = ops(i % 4);
        let client = det_spec.clients[i % 4].0;
        cluster.submit(client, proc, args);
        if i % 8 == 7 {
            cluster.round();
        }
    }
    assert!(cluster.run_until_finished(total_tx, 2_000), "cluster stalled");
    let receipts: Vec<ia_ccf_audit::StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| ia_ccf_audit::StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts"),
        })
        .collect();
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(0)), SeqNum(0));
    let auditor = Auditor::new(det_spec.genesis.clone(), app);
    let t0 = Instant::now();
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    let audit_secs = t0.elapsed().as_secs_f64();
    assert!(matches!(outcome, AuditOutcome::Clean), "audit must be clean");
    let audit_tx_s = total_tx as f64 / audit_secs;

    rows.push(Row::new(
        format!("f={f_label} (N={n})"),
        &[
            ("exec_tx_s", exec_tx_s),
            ("audit_tx_s", audit_tx_s),
            ("audit_speedup_pct", (audit_tx_s / exec_tx_s - 1.0) * 100.0),
        ],
    ));
}

fn main() {
    let mut rows = Vec::new();
    measure(4, 1, &mut rows); // f = 1
    measure(13, 4, &mut rows); // f = 4
    emit("audit_speed", "§6.5: audit vs execution speed", &rows);
    println!("\npaper: audit 23% faster than execution at f=1, 67% at f=4");
    println!("shape check: the audit advantage grows with f (execution pays more replication crypto, the auditor doesn't)");
}
