//! Fig. 6: throughput/latency when varying the checkpoint interval and
//! the number of SmallBank accounts (f = 1).
//!
//! The paper sweeps intervals {1 700, 10 000, 100 000} over {100k, 500k,
//! 1M} accounts: checkpoint overhead grows with store size and frequency,
//! and is low for intervals ≥ 10k. We scale the grid by IACCF_ACCOUNTS
//! (the O(n) checkpoint digest is what the sweep exposes).

use bench::{accounts, duration, emit, run_iaccf_smallbank, Row};
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::ClusterSpec;

fn main() {
    let base = accounts();
    let account_grid = [base / 10, base / 2, base];
    let intervals = [170u64, 1_000, 10_000];
    let mut rows = Vec::new();

    for &acct in &account_grid {
        for &interval in &intervals {
            let spec = ClusterSpec::new(4, 4, ProtocolParams::full())
                .with_config(|c| c.checkpoint_interval = interval);
            let cfg = RtConfig {
                latency: LatencyModel::Zero,
                duration: duration(),
                outstanding_per_client: 64,
                ..RtConfig::default()
            };
            let report = run_iaccf_smallbank(&spec, &cfg, acct.max(100));
            let lat = report.latency.clone();
            rows.push(Row::new(
                format!("accounts={acct} C={interval}"),
                &[
                    ("tx_s", report.throughput().per_sec()),
                    ("lat_ms", lat.mean_us() as f64 / 1000.0),
                ],
            ));
        }
    }

    emit("fig6", "Fig. 6: checkpoint interval sweep", &rows);
    println!("\npaper shape: overhead grows with store size and checkpoint frequency; low for C >= 10k");
}
