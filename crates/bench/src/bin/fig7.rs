//! Fig. 7: throughput/latency with different SmallBank account counts
//! (f = 1).
//!
//! The paper runs 100k/500k/1M accounts: throughput decreases as the
//! key-value store grows (CHAMP map access is logarithmic; ours is an
//! ordered map, same shape).

use bench::{accounts, duration, emit, run_iaccf_smallbank, Row};
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::RtConfig;
use ia_ccf_sim::ClusterSpec;

fn main() {
    let base = accounts();
    let grid = [base / 10, base, base * 10, base * 50];
    let mut rows = Vec::new();

    for &acct in &grid {
        // Checkpoint interval scaled so that checkpoints (whose digests are
        // O(store size), the mechanism behind the paper's Fig. 7/6 trends)
        // occur within the shortened measurement window.
        let spec = ClusterSpec::new(4, 4, ProtocolParams::full())
            .with_config(|c| c.checkpoint_interval = 2_000);
        let cfg = RtConfig {
            latency: LatencyModel::Zero,
            duration: duration(),
            outstanding_per_client: 64,
            ..RtConfig::default()
        };
        let report = run_iaccf_smallbank(&spec, &cfg, acct.max(100));
        let mut lat = report.latency.clone();
        rows.push(Row::new(
            format!("accounts={acct}"),
            &[
                ("tx_s", report.throughput().per_sec()),
                ("lat_ms", lat.mean_us() as f64 / 1000.0),
                ("p99_ms", lat.p99_us() as f64 / 1000.0),
            ],
        ));
    }

    emit("fig7", "Fig. 7: throughput vs store size", &rows);
    println!("\npaper shape: throughput decreases as the number of accounts grows");
}
