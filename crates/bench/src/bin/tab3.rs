//! Tab. 3: breakdown of IA-CCF features (f = 1).
//!
//! Variants (a)–(h) strip functionality cumulatively; the paper's
//! findings: (a)–(d) comparable; dropping client-signature verification
//! (e) roughly doubles throughput; MACs (f) and no-ledger (g) add little;
//! empty requests (h) double it again — i.e. the cost is dominated by
//! client-request crypto and the transactional store, not by the ledger
//! or accountability machinery. HotStuff and Pompē (empty requests)
//! provide the external yardsticks.

use bench::{accounts, duration, emit, noop_ops, run_iaccf_smallbank, Row};
use ia_ccf_baselines::{run_hotstuff, run_pompe};
use ia_ccf_core::ProtocolParams;
use ia_ccf_net::LatencyModel;
use ia_ccf_sim::rt::{run_cluster, RtConfig};
use ia_ccf_sim::ClusterSpec;
use std::sync::Arc;

fn rt_cfg(receipts: bool) -> RtConfig {
    RtConfig {
        latency: LatencyModel::Zero,
        duration: duration(),
        outstanding_per_client: 64,
        clients_require_receipts: receipts,
        ..RtConfig::default()
    }
}

fn main() {
    let account_count = accounts();
    let mut rows = Vec::new();

    // (a)–(g): SmallBank over progressively stripped variants.
    let variants: Vec<(&str, ProtocolParams, bool, u64)> = vec![
        ("(a) Full IA-CCF", ProtocolParams::full(), true, account_count),
        ("(b) IA-CCF-NoReceipt", ProtocolParams::no_receipt(), false, account_count),
        ("(c) + without checkpoints", ProtocolParams::no_checkpoints(), false, account_count),
        ("(d) + small key-value store", ProtocolParams::no_checkpoints(), false, 128),
        ("(e) + without signed client requests", ProtocolParams::unsigned_clients(), false, 128),
        ("(f) + with MACs only", ProtocolParams::macs_only(), false, 128),
        ("(g) + without ledger", ProtocolParams::no_ledger(), false, 128),
    ];
    for (label, params, receipts, accts) in variants {
        let spec = ClusterSpec::new(4, 4, params)
            .with_config(|c| c.checkpoint_interval = 10_000);
        let report = run_iaccf_smallbank(&spec, &rt_cfg(receipts), accts);
        rows.push(Row::new(label, &[("tx_s", report.throughput().per_sec())]));
    }

    // (h) empty requests: no-op procedure, no state.
    let spec = ClusterSpec::new(4, 4, ProtocolParams::no_ledger())
        .with_config(|c| c.checkpoint_interval = 10_000);
    let report = run_cluster(
        &spec,
        Arc::new(ia_ccf_smallbank::SmallBankApp),
        &rt_cfg(false),
        noop_ops(),
        |_| {},
    );
    rows.push(Row::new("(h) + with empty requests", &[("tx_s", report.throughput().per_sec())]));

    // External yardsticks with empty requests.
    let hs = run_hotstuff(4, 4, 64, 300, LatencyModel::Zero, duration());
    rows.push(Row::new("HotStuff (empty requests)", &[("tx_s", hs.tx_per_sec())]));
    let pompe = run_pompe(4, 4, 64, 300, LatencyModel::Zero, duration());
    rows.push(Row::new("Pompe-like (empty requests)", &[("tx_s", pompe.tx_per_sec())]));

    emit("tab3", "Tab. 3: feature breakdown (f=1)", &rows);
    println!("\npaper: (a) 47.8k (b) 51.2k (c) 51.3k (d) 53.8k (e) 111.9k (f) 128.9k (g) 132.0k (h) 299.3k; HotStuff 308.0k; Pompe 465.6k");
    println!("shape checks: (a)≈(b)≈(c)≈(d); (e) ≈ 2x (d); (h) ≈ 2x (f)/(g); Pompe > HotStuff");
}
