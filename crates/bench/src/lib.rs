//! Shared plumbing for the benchmark binaries.
//!
//! Every table/figure of the paper has a binary in `src/bin/` that prints
//! the same rows/series the paper reports and writes JSON to
//! `target/experiments/<name>.json`. Environment knobs:
//!
//! * `IACCF_BENCH_SECS` — seconds per measured point (default 2);
//! * `IACCF_ACCOUNTS` — SmallBank accounts (default 10 000; the paper uses
//!   500 000 — larger values mostly slow the O(n) checkpoint digests);
//! * `IACCF_MAX_N` — cap on replica counts swept by fig5 (default 16).

use std::sync::Arc;
use std::time::Duration;

use ia_ccf_sim::rt::{run_cluster, RtConfig, RtReport};
use ia_ccf_sim::ClusterSpec;
use parking_lot::Mutex;

/// Seconds per measured point.
pub fn bench_secs() -> u64 {
    std::env::var("IACCF_BENCH_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

/// SmallBank account count.
pub fn accounts() -> u64 {
    std::env::var("IACCF_ACCOUNTS").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000)
}

/// Largest replica count for scalability sweeps.
pub fn max_n() -> usize {
    std::env::var("IACCF_MAX_N").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// A SmallBank op source shared across client threads (per-client RNG
/// streams derived from the client index).
pub fn smallbank_ops(
    accounts: u64,
) -> Arc<dyn Fn(usize) -> (ia_ccf_types::ProcId, Vec<u8>) + Send + Sync> {
    let workloads: Vec<Mutex<ia_ccf_smallbank::Workload>> =
        (0..64).map(|i| Mutex::new(ia_ccf_smallbank::Workload::new(accounts, 1000 + i))).collect();
    Arc::new(move |ci| {
        let op = workloads[ci % workloads.len()].lock().next_op();
        (op.proc, op.args)
    })
}

/// An empty-request op source (Tab. 3 row (h)).
pub fn noop_ops() -> Arc<dyn Fn(usize) -> (ia_ccf_types::ProcId, Vec<u8>) + Send + Sync> {
    Arc::new(|_| (ia_ccf_smallbank::NOOP, Vec::new()))
}

/// Run IA-CCF under SmallBank and return the report.
pub fn run_iaccf_smallbank(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    account_count: u64,
) -> RtReport {
    let app = Arc::new(ia_ccf_smallbank::SmallBankApp);
    run_cluster(spec, app, cfg, smallbank_ops(account_count), |kv| {
        ia_ccf_smallbank::populate(kv, account_count, 10_000);
    })
}

/// One output row: label plus metric pairs, printable and JSON-able.
#[derive(serde::Serialize)]
pub struct Row {
    /// Row label (system/variant/parameter).
    pub label: String,
    /// `(metric name, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, metrics: &[(&str, f64)]) -> Self {
        Row {
            label: label.into(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }
}

/// Print rows as an aligned table and persist them as JSON under
/// `target/experiments/<name>.json`.
pub fn emit(name: &str, title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    for row in rows {
        let cells: Vec<String> =
            row.metrics.iter().map(|(k, v)| format!("{k}={v:.1}")).collect();
        println!("{:40} {}", row.label, cells.join("  "));
    }
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    let _ = std::fs::write(&path, rows_to_json(rows));
    println!("[written {}]", path.display());
}

/// Render rows as pretty-printed JSON. Hand-rolled because the vendored
/// serde shim is compile-only (see vendor/README.md).
fn rows_to_json(rows: &[Row]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"label\": \"{}\",\n", escape(&row.label)));
        out.push_str("    \"metrics\": [\n");
        for (j, (k, v)) in row.metrics.iter().enumerate() {
            let v = if v.is_finite() { format!("{v}") } else { "null".to_string() };
            let comma = if j + 1 < row.metrics.len() { "," } else { "" };
            out.push_str(&format!("      [\"{}\", {}]{}\n", escape(k), v, comma));
        }
        out.push_str("    ]\n");
        out.push_str(if i + 1 < rows.len() { "  },\n" } else { "  }\n" });
    }
    out.push_str("]\n");
    out
}

/// Default measured duration.
pub fn duration() -> Duration {
    Duration::from_secs(bench_secs())
}
