//! Criterion microbenchmarks for the primitives the paper's numbers rest
//! on: receipt verification (§6.3), Merkle operations (§3.1), the nonce
//! commitment scheme (Lemma 3), signatures vs MACs (Tab. 3 row f), and
//! key-value store access vs size (Fig. 7's cause).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ia_ccf_crypto::{hash_bytes, KeyPair, Nonce};
use ia_ccf_kv::KvStore;
use ia_ccf_merkle::MerkleTree;
use ia_ccf_types::config::testutil::test_config;
use ia_ccf_types::receipt::testutil::make_tx_receipts;
use ia_ccf_types::{Digest, LedgerIdx, SeqNum, TxResult, View};

fn receipt(n: usize, batch: usize) -> (ia_ccf_types::Configuration, ia_ccf_types::Receipt) {
    let (config, replica_keys, _) = test_config(n);
    let entries: Vec<(Digest, LedgerIdx, TxResult)> = (0..batch)
        .map(|i| {
            (
                hash_bytes(format!("t{i}").as_bytes()),
                LedgerIdx(i as u64),
                TxResult { ok: true, output: vec![0], write_set_digest: Digest::zero() },
            )
        })
        .collect();
    let mut receipts = make_tx_receipts(
        &config,
        &replica_keys,
        View(0),
        SeqNum(5),
        hash_bytes(b"m"),
        LedgerIdx(0),
        Digest::zero(),
        &entries,
    );
    (config, receipts.swap_remove(batch / 2))
}

fn bench_receipts(c: &mut Criterion) {
    let mut group = c.benchmark_group("receipt_verify");
    for &(n, f) in &[(4usize, 1u32), (10, 3)] {
        let (config, r) = receipt(n, 300);
        group.bench_with_input(BenchmarkId::new("full", format!("f{f}")), &f, |b, _| {
            b.iter(|| r.verify(&config).expect("valid"))
        });
    }
    for &batch in &[300usize, 800] {
        let (_, r) = receipt(4, batch);
        group.bench_with_input(BenchmarkId::new("merkle_path", batch), &batch, |b, _| {
            b.iter(|| r.implied_root_g().expect("path"))
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    group.bench_function("append_10k", |b| {
        let leaves: Vec<Digest> = (0..10_000u32).map(|i| hash_bytes(&i.to_le_bytes())).collect();
        b.iter(|| {
            let mut t = MerkleTree::new();
            for l in &leaves {
                t.append(*l);
            }
            t.root()
        })
    });
    let big = MerkleTree::from_leaves((0..100_000u32).map(|i| hash_bytes(&i.to_le_bytes())));
    group.bench_function("path_100k", |b| b.iter(|| big.path(54_321).expect("path")));
    group.bench_function("root_100k", |b| b.iter(|| big.root()));
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let kp = KeyPair::from_label("bench");
    let msg = vec![0u8; 256];
    let sig = kp.sign(&msg);
    group.bench_function("ed25519_sign", |b| b.iter(|| kp.sign(&msg)));
    group.bench_function("ed25519_verify", |b| b.iter(|| kp.public().verify(&msg, &sig)));
    let nonce = Nonce([7; 16]);
    let commitment = nonce.commitment();
    group.bench_function("nonce_commit_open", |b| b.iter(|| commitment.opens_with(&nonce)));
    group.finish();
}

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    for &size in &[1_000u64, 100_000] {
        let mut kv = KvStore::new();
        ia_ccf_smallbank::populate(&mut kv, size, 1000);
        group.bench_with_input(BenchmarkId::new("get", size), &size, |b, _| {
            let key = ia_ccf_smallbank::account_key(size / 2);
            b.iter(|| kv.get(&key).cloned())
        });
        group.bench_with_input(BenchmarkId::new("digest", size), &size, |b, _| {
            b.iter(|| kv.digest())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_receipts, bench_merkle, bench_crypto, bench_kv
}
criterion_main!(benches);
