//! IA-CCF over real sockets: four replicas and a client on localhost TCP
//! with length-prefixed frames, exchanging the actual wire encoding.
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams};
use ia_ccf::net::TcpNode;
use ia_ccf_client::{Client, ClientSend};
use ia_ccf_sim::ClusterSpec;
use ia_ccf_types::{ClientId, ProtocolMsg, ReplicaId, Wire};

fn main() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let n = spec.genesis.n();
    let stop = Arc::new(AtomicBool::new(false));

    // Bind a listener per node (replicas 0..n, client at address 1000).
    let nodes: Vec<Arc<TcpNode>> =
        (0..n as u64).map(|a| TcpNode::listen(a, "127.0.0.1:0").expect("bind")).collect();
    let client_node = TcpNode::listen(1000, "127.0.0.1:0").expect("bind");
    // Full mesh: i connects to j for i < j; the client connects to all.
    for i in 0..n {
        for j in (i + 1)..n {
            nodes[i].connect(&nodes[j].local_addr()).expect("connect");
        }
        client_node.connect(&nodes[i].local_addr()).expect("connect");
    }
    std::thread::sleep(Duration::from_millis(100)); // mesh settles
    println!("mesh up: {} replicas + 1 client over localhost TCP", n);

    // Replica threads: decode frames from the wire, run the state machine,
    // encode outputs back to frames.
    let mut handles = Vec::new();
    for (rank, node) in nodes.iter().enumerate().take(n) {
        let mut replica = spec.build_replica(rank, Arc::new(CounterApp));
        let node = Arc::clone(node);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut last_tick = Instant::now();
            // Reusable wire-encode scratch: hot-path sends do not allocate.
            let mut scratch = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let input = match node.inbound.recv_timeout(Duration::from_millis(1)) {
                    Ok((peer, frame)) => match ProtocolMsg::from_bytes(&frame) {
                        Ok(msg) => {
                            let from = if peer < 1000 {
                                NodeId::Replica(ReplicaId(peer as u32))
                            } else {
                                NodeId::Client(ClientId(peer))
                            };
                            Input::Message { from, msg }
                        }
                        Err(_) => continue,
                    },
                    Err(_) => Input::Tick,
                };
                let mut inputs = vec![input];
                if last_tick.elapsed() >= Duration::from_millis(1) {
                    inputs.push(Input::Tick);
                    last_tick = Instant::now();
                }
                for input in inputs {
                    for out in replica.handle(input) {
                        match out {
                            Output::SendReplica(to, msg) => {
                                node.send(to.0 as u64, msg.encode_scratch(&mut scratch));
                            }
                            Output::BroadcastReplicas(msg) => {
                                let bytes = msg.encode_scratch(&mut scratch);
                                for peer in node.connected_peers() {
                                    if peer < 1000 {
                                        node.send(peer, bytes);
                                    }
                                }
                            }
                            Output::SendClient(to, msg) => {
                                node.send(to.0, msg.encode_scratch(&mut scratch));
                            }
                            _ => {}
                        }
                    }
                }
            }
            node.shutdown();
        }));
    }

    // The client drives 10 transactions through real sockets.
    let (client_id, client_kp) = spec.clients[0].clone();
    let gt_hash = ia_ccf::ledger::Ledger::new(spec.genesis.clone())
        .genesis_hash()
        .expect("genesis");
    let mut client = Client::new(client_id, client_kp, gt_hash, spec.genesis.clone());
    let mut scratch = Vec::new();
    let mut finished = 0usize;
    let mut submitted = 0usize;
    let t0 = Instant::now();
    while finished < 10 && t0.elapsed() < Duration::from_secs(30) {
        if submitted == finished {
            client.submit(CounterApp::INCR, b"tcp-counter".to_vec());
            submitted += 1;
        }
        for send in client.poll_send() {
            match send {
                ClientSend::To(r, msg) => {
                    client_node.send(r.0 as u64, msg.encode_scratch(&mut scratch));
                }
                ClientSend::Broadcast(msg) => {
                    let bytes = msg.encode_scratch(&mut scratch);
                    for peer in client_node.connected_peers() {
                        client_node.send(peer, bytes);
                    }
                }
            }
        }
        if let Ok((peer, frame)) = client_node.inbound.recv_timeout(Duration::from_millis(2)) {
            if let Ok(msg) = ProtocolMsg::from_bytes(&frame) {
                client.on_message(ReplicaId(peer as u32), msg);
            }
        }
        client.on_tick();
        for tx in client.take_completed() {
            finished += 1;
            let receipt = tx.receipt.expect("receipts on");
            println!(
                "tx {} committed at index {} — receipt with {} signers verified over TCP",
                tx.req_id,
                receipt.tx_index().expect("tx receipt").0,
                receipt.cert.signers.count(),
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    client_node.shutdown();
    for h in handles {
        let _ = h.join();
    }
    assert_eq!(finished, 10, "all transactions must complete over TCP");
    println!("tcp_cluster complete: 10 receipts over real sockets");
}
