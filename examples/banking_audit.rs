//! The paper's introductory accountability story, end to end.
//!
//! Alice holds a receipt showing a deposit of $1M into Bob's account at
//! ledger index `i`. Bob later queries his balance and receives a receipt
//! at index `j > i` that does *not* show the money. Both receipts are
//! perfectly valid — a colluding quorum of replicas executed the balance
//! query dishonestly. Bob engages an auditor; the auditor obtains the
//! ledger through the enforcer, replays it, produces a universal
//! proof-of-misbehaviour, and the enforcer punishes the members operating
//! the lying replicas (§1, §4).
//!
//! ```sh
//! cargo run --release --example banking_audit
//! ```

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, Enforcer, LedgerPackage, StoredReceipt, UpomKind};
use ia_ccf::core::byzantine::TamperedApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_smallbank::{Balances, SmallBankApp, BALANCE, DEPOSIT};
use ia_ccf_types::ReplicaId;

const BOB_ACCOUNT: u64 = 7;

fn main() {
    // --- A consortium whose replicas ALL run tampered banking logic: ---
    // balance queries for Bob's account hide the money.
    let spec = ClusterSpec::new(4, 2, ProtocolParams::default());
    let tampered = |_rank: usize| -> Arc<dyn ia_ccf::core::App> {
        Arc::new(TamperedApp::new(Arc::new(SmallBankApp), |proc, args, _| {
            let is_bob = args.get(..8).map(|a| a == BOB_ACCOUNT.to_le_bytes()).unwrap_or(false);
            (proc == BALANCE && is_bob)
                .then(|| Balances { checking: 0, savings: 0 }.to_bytes())
        }))
    };
    let mut cluster = DetCluster::with_apps(&spec, tampered);
    let alice = spec.clients[0].0;
    let bob = spec.clients[1].0;

    // --- Alice deposits $1M into Bob's savings. ---
    let args = [BOB_ACCOUNT.to_le_bytes(), 1_000_000i64.to_le_bytes()].concat();
    cluster.submit(alice, DEPOSIT, args);
    assert!(cluster.run_until_finished(1, 100));
    let (_, deposit_tx) = cluster.finished[0].clone();
    let deposit_receipt = deposit_tx.receipt.clone().expect("receipt");
    println!(
        "Alice's deposit executed at ledger index {} — receipt verified: {}",
        deposit_receipt.tx_index().unwrap(),
        deposit_receipt.verify(&spec.genesis).is_ok()
    );

    // --- Bob checks his balance; the colluding quorum lies. ---
    cluster.submit(bob, BALANCE, BOB_ACCOUNT.to_le_bytes().to_vec());
    assert!(cluster.run_until_finished(2, 100));
    let (_, balance_tx) = cluster.finished[1].clone();
    let balance_receipt = balance_tx.receipt.clone().expect("receipt");
    let shown = Balances::from_bytes(&balance_tx.output);
    println!(
        "Bob's balance query at index {} shows savings = {} — receipt verified: {}",
        balance_receipt.tx_index().unwrap(),
        shown.savings,
        balance_receipt.verify(&spec.genesis).is_ok()
    );
    assert_eq!(shown.savings, 0, "the lie: the receipt-certified balance hides the deposit");

    // --- Bob exchanges receipts with Alice and engages an auditor. ---
    let receipts = vec![
        StoredReceipt { request: deposit_tx.request.clone(), receipt: deposit_receipt },
        StoredReceipt { request: balance_tx.request.clone(), receipt: balance_receipt },
    ];
    // The enforcer compels a replica to produce the ledger.
    let mut enforcer = Enforcer::new();
    let sources: Vec<&dyn ia_ccf::audit::LedgerSource> =
        vec![cluster.replica(ReplicaId(0)), cluster.replica(ReplicaId(1))];
    let packages =
        enforcer.obtain_packages(&sources, ia_ccf_types::SeqNum(0), &spec.genesis);
    let (producer, package): &(ReplicaId, LedgerPackage) = &packages[0];
    println!("enforcer obtained a ledger package from {producer}");

    // --- The auditor replays the ledger with the HONEST stored procedures. ---
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(SmallBankApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), package);
    let AuditOutcome::Violation(upom) = outcome else {
        panic!("the audit must uncover the lie");
    };
    assert_eq!(upom.kind, UpomKind::WrongExecution);
    println!("\nuPoM produced: {} (at batch {})", upom.details, upom.at_seq);
    println!("blamed replicas: {:?}", upom.blamed);
    assert!(upom.blamed.len() > spec.genesis.f());

    // --- The enforcer verifies the uPoM and punishes the members. ---
    let sanctions = enforcer
        .process_upom(
            &upom,
            &receipts,
            &GovernanceChain::new(),
            package,
            &spec.genesis,
            Arc::new(SmallBankApp),
            &spec.genesis,
        )
        .expect("uPoM verifies");
    println!("\nsanctions:");
    for s in &sanctions {
        println!("  member {} punished for replica {}: {}", s.member, s.replica, s.reason);
    }
    assert!(sanctions.len() > spec.genesis.f());
    println!(
        "\nindividual accountability delivered: {} members punished despite ALL replicas colluding",
        sanctions.len()
    );
}
