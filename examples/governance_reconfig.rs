//! Live reconfiguration (§5): a referendum adds a fifth member and
//! replica; the service runs the end-of-configuration schedule, the new
//! replica bootstraps from the ledger, and a client verifies receipts
//! across the configuration boundary using only its governance receipt
//! chain — no ledger required.
//!
//! ```sh
//! cargo run --release --example governance_reconfig
//! ```

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::{ProtocolParams, Replica};
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, GovAction, KeyPair, LedgerIdx, MemberDesc, MemberId, ReplicaDesc, ReplicaId,
    Request, RequestAction, SignedRequest,
};

fn main() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;
    let gt = cluster.replica(ReplicaId(0)).gt_hash();

    // The proposed configuration: everyone from genesis, plus member 4
    // operating new replica 4 (with the member's key endorsement, §5.1).
    let mut new_config = spec.genesis.clone();
    new_config.number = 1;
    let member4 = KeyPair::from_label("member-4");
    let replica4 = KeyPair::from_label("replica-4");
    new_config.members.push(MemberDesc { id: MemberId(4), key: member4.public() });
    let endorsement =
        member4.sign(&ReplicaDesc::endorsement_payload(ReplicaId(4), &replica4.public()));
    new_config.replicas.push(ReplicaDesc {
        id: ReplicaId(4),
        key: replica4.public(),
        operator: MemberId(4),
        endorsement,
    });

    // Pre-referendum traffic.
    for _ in 0..3 {
        cluster.submit(client, CounterApp::INCR, b"counter".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(3, 100));
    println!("3 transactions committed under configuration 0 (N=4)");

    // The referendum: member 0 proposes; members 0–2 vote (threshold 3).
    let gov = |member: MemberId, key: &KeyPair, action: GovAction, req_id: u64| {
        SignedRequest::sign(
            Request {
                action: RequestAction::Governance(action),
                client: ClientId(member.0 as u64),
                gt_hash: gt,
                min_index: LedgerIdx(0),
                req_id,
            },
            key,
        )
    };
    cluster.submit_raw(
        ClientId(0),
        gov(
            MemberId(0),
            &spec.member_keys[0],
            GovAction::Propose { proposal_id: 1, new_config: new_config.clone() },
            1,
        ),
    );
    cluster.round();
    for m in 0..3u32 {
        cluster.submit_raw(
            ClientId(m as u64),
            gov(
                MemberId(m),
                &spec.member_keys[m as usize],
                GovAction::Vote { proposal_id: 1, approve: true },
                10 + m as u64,
            ),
        );
        cluster.round();
        println!("member {m} voted to approve");
    }

    assert!(cluster.run_until(400, |c| {
        c.replicas.values().all(|r| r.inner.active_config().number == 1)
    }));
    println!("referendum passed; configuration 1 active (N=5, end-of-config schedule complete)");

    // The new replica bootstraps by replaying a ledger copy (§3.4/§5.1) —
    // re-executing every batch and checking every signed Merkle root.
    let entries = cluster.replica(ReplicaId(0)).ledger().entries().to_vec();
    let new_replica = Replica::bootstrap(
        ReplicaId(4),
        replica4,
        Arc::new(CounterApp),
        ProtocolParams::default(),
        spec.client_keys(),
        &entries,
    )
    .expect("ledger replay succeeds");
    println!(
        "replica 4 bootstrapped: replayed {} ledger entries, config number {}",
        entries.len(),
        new_replica.active_config().number
    );
    cluster.add_replica(new_replica);

    // Post-reconfiguration traffic. The client's receipts reference the
    // new governance index; it fetches the governance receipt chain and
    // verifies under the new signing keys (§5.2).
    for _ in 0..4 {
        cluster.submit(client, CounterApp::INCR, b"counter".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(7, 400));
    println!("4 more transactions committed under configuration 1");

    // Rebuild the chain a fresh verifier would use.
    let mut chain = GovernanceChain::new();
    for link in cluster.replica(ReplicaId(2)).gov_chain() {
        chain.push(link.clone());
    }
    let history = chain.verify(&spec.genesis).expect("chain verifies from genesis");
    println!(
        "governance chain: {} links; configurations: {:?}",
        chain.len(),
        history.steps.iter().map(|(i, c)| (i.0, c.number, c.n())).collect::<Vec<_>>()
    );
    for (_, tx) in &cluster.finished[3..] {
        let receipt = tx.receipt.as_ref().expect("receipt");
        let config = history.config_for_gov_index(receipt.gov_index());
        receipt.verify(config).expect("verifies under the chain-derived configuration");
    }
    println!("all post-reconfiguration receipts verify via the governance chain alone");
}
