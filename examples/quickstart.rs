//! Quickstart: stand up a 4-replica IA-CCF service, execute transactions,
//! and hold a universally-verifiable receipt at the end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::ReplicaId;

fn main() {
    // A consortium of 4 members, each operating one replica (f = 1),
    // plus one registered client.
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;

    println!("service name H(gt) = {}", cluster.replica(ReplicaId(0)).gt_hash());

    // Submit a few increments; the cluster orders them with L-PBFT,
    // early-executes, and replies with receipt components.
    for i in 0..5 {
        cluster.submit(client, CounterApp::INCR, b"my-counter".to_vec());
        cluster.round();
        println!("submitted increment #{}", i + 1);
    }
    assert!(cluster.run_until_finished(5, 200), "transactions did not complete");

    // Every completed transaction carries a verified receipt: N − f
    // replica signatures binding ⟨t, i, o⟩ into the ledger's Merkle roots.
    for (who, tx) in &cluster.finished {
        let receipt = tx.receipt.as_ref().expect("receipts enabled");
        let config = cluster.replica(ReplicaId(0)).active_config();
        receipt.verify(config).expect("receipt verifies under the active configuration");
        println!(
            "client {who}: req {} executed at ledger index {} in batch {} — output {:?}, receipt ok",
            tx.req_id,
            receipt.tx_index().expect("tx receipt").0,
            receipt.seq(),
            u64::from_le_bytes(tx.output.clone().try_into().unwrap_or_default()),
        );
    }

    // The replicas agree on the full ledger and the application state.
    cluster.assert_ledgers_consistent();
    let value = cluster
        .replica(ReplicaId(2))
        .kv()
        .get(b"my-counter")
        .map(|v| u64::from_le_bytes(v.as_slice().try_into().expect("u64")))
        .unwrap_or(0);
    println!("counter value on replica 2: {value}");
    assert_eq!(value, 5);
    println!("quickstart complete: 5 transactions, 5 verified receipts, consistent ledgers");
}
