//! # IA-CCF in Rust
//!
//! A reproduction of *IA-CCF: Individual Accountability for Permissioned
//! Ledgers* (NSDI 2022): a BFT permissioned ledger that can assign blame
//! to the individual consortium members operating misbehaving replicas —
//! even when **all** replicas misbehave.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — L-PBFT: ledger-integrated BFT replication with early
//!   execution, nonce commitments, in-ledger evidence, auditable view
//!   changes, checkpoints and reconfiguration (§3, §5).
//! * [`client`] — request signing, receipt assembly/verification, the
//!   governance receipt chain (§3.3, §5.2).
//! * [`audit`] — the auditor and enforcer: ledger packages, replay,
//!   blame assignment, uPoMs (§4).
//! * [`types`], [`crypto`], [`merkle`], [`kv`], [`ledger`],
//!   [`governance`] — the substrates.
//! * [`net`], [`sim`] — transports and cluster harnesses.
//! * [`smallbank`], [`baselines`] — the evaluation workload and the
//!   comparison systems (§6).
//!
//! Start with `examples/quickstart.rs`; the audit flow is demonstrated in
//! `examples/banking_audit.rs` and reconfiguration in
//! `examples/governance_reconfig.rs`.

pub use ia_ccf_audit as audit;
pub use ia_ccf_baselines as baselines;
pub use ia_ccf_client as client;
pub use ia_ccf_core as core;
pub use ia_ccf_crypto as crypto;
pub use ia_ccf_governance as governance;
pub use ia_ccf_kv as kv;
pub use ia_ccf_ledger as ledger;
pub use ia_ccf_merkle as merkle;
pub use ia_ccf_net as net;
pub use ia_ccf_pool as pool;
pub use ia_ccf_sim as sim;
pub use ia_ccf_smallbank as smallbank;
pub use ia_ccf_types as types;
