//! Crash-restart differential harness for the durable ledger.
//!
//! Contract under test: a replica killed mid-commit — at *any* crash
//! point, including between the write and the fsync — restarts from its
//! data directory, repairs the torn tail without ever parsing a partial
//! batch into state, resumes the transfer from its first missing batch
//! (never from genesis), and ends byte-identical to a replica that never
//! crashed. On top of that, the recovery fast-path restores a recent
//! agreed checkpoint and pages only the ledger suffix — O(window) bytes
//! instead of O(history) — and a page server lying about the ledger tip
//! is unmasked by cross-checking the claim against f+1 replicas.

use std::collections::VecDeque;
use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::byzantine::Fault;
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams, Replica};
use ia_ccf_sim::{ClusterSpec, DetCluster, TempDir};
use ia_ccf_types::{LedgerEntry, LedgerIdx, ProtocolMsg, ReplicaId, SeqNum, Wire};
use proptest::prelude::*;

fn durable_params(fsync_interval_batches: u64) -> ProtocolParams {
    ProtocolParams { fsync_interval_batches, view_timeout_ticks: 80, ..ProtocolParams::default() }
}

/// Build a cluster where every replica persists its ledger under its own
/// subdirectory of `tmp`.
fn durable_cluster(spec: &ClusterSpec, tmp: &TempDir) -> DetCluster {
    DetCluster::with_replica_builder(spec, |rank| {
        let mut params = spec.params.clone();
        params.data_dir = Some(tmp.subdir(&format!("r{rank}")).expect("subdir"));
        spec.build_replica_with(rank, Arc::new(CounterApp), params)
    })
}

/// Assert two replicas' full ledgers and KV stores are byte-identical.
fn assert_ledgers_byte_identical(cluster: &DetCluster, a: ReplicaId, b: ReplicaId) {
    let (ra, rb) = (cluster.replica(a), cluster.replica(b));
    assert_eq!(ra.ledger().len(), rb.ledger().len(), "{a:?} vs {b:?}: ledger length");
    for i in 0..ra.ledger().len() {
        assert_eq!(
            ra.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            rb.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            "{a:?} vs {b:?}: ledger divergence at entry {i}"
        );
    }
    assert_eq!(ra.kv().digest(), rb.kv().digest(), "{a:?} vs {b:?}: KV digest");
}

/// Total encoded bytes a from-genesis transfer would move (the oracle a
/// recovering replica's `SyncReport::bytes` is measured against).
fn genesis_transfer_bytes(cluster: &DetCluster, server: ReplicaId) -> u64 {
    cluster.replica(server).ledger_fetch_oracle(SeqNum(1)).iter().map(|e| e.len() as u64).sum()
}

// ----------------------------------------------------------------------
// The differential harness: kill mid-commit, restart from disk, rejoin.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Kill replica 3 mid-commit at a randomized crash point — the tail
    /// file is truncated to a random byte inside `[synced, written]`,
    /// emulating the OS page cache dying between the write and the fsync
    /// — then restart it from the data dir, re-sync the missed window and
    /// demand a ledger and KV digest byte-identical to a survivor that
    /// never crashed. Sweeps `fsync_interval_batches` ∈ {1, 8, 64}.
    #[test]
    fn killed_mid_commit_replica_restarts_and_matches_survivor(
        fsync_pick in 0usize..3,
        n_before in 2usize..6,
        n_missed in 1usize..6,
        cut_pct in 0u64..=100,
    ) {
        let fsync = [1u64, 8, 64][fsync_pick];
        let tmp = TempDir::new("crash-restart").expect("tempdir");
        let spec = ClusterSpec::new(4, 2, durable_params(fsync));
        let mut cluster = durable_cluster(&spec, &tmp);
        for i in 0..n_before {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, format!("k{}", i % 3).into_bytes());
            cluster.round();
        }
        prop_assert!(cluster.run_until_finished(n_before, 1_000));

        // Kill mid-commit: a request is in flight (submitted, not yet
        // driven to quiescence) when the replica dies, and whatever of
        // the tail file had not reached stable storage dies with it.
        let client = spec.clients[0].0;
        cluster.submit(client, CounterApp::INCR, b"in-flight".to_vec());
        let dead = cluster.crash_and_drop(ReplicaId(3)).expect("replica 3 present");
        let log = dead.ledger().durable().expect("durable log attached");
        let (synced, written, tail) = (log.synced_len(), log.written_len(), log.tail_file_path());
        let completed = log.completed_len();
        drop(dead);
        // Watermarks are global byte offsets; the tail file starts at
        // `completed`.
        let cut = synced + (written - synced) * cut_pct / 100;
        let file = std::fs::OpenOptions::new().write(true).open(&tail).expect("tail file");
        file.set_len(cut - completed).expect("truncate to crash point");
        drop(file);

        // Survivors commit the in-flight request plus a missed window.
        for i in 0..n_missed {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, format!("m{}", i % 3).into_bytes());
            cluster.round();
        }
        let total = n_before + 1 + n_missed;
        prop_assert!(cluster.run_until_finished(total, 1_000));

        // Restart from the data dir: torn tail repaired, durable prefix
        // replayed, then the missed suffix paged in from a survivor.
        let mut params3 = spec.params.clone();
        params3.data_dir = Some(tmp.path().join("r3"));
        let restarted =
            spec.restart_replica(3, Arc::new(CounterApp), params3).expect("restart from dir");
        prop_assert!(!restarted.ledger().is_empty(), "genesis always survives repair");
        cluster.recover(restarted, ReplicaId(0));
        prop_assert!(
            cluster.run_until(200, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "re-sync did not complete: {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );

        // The restarted replica rejoins consensus and matches a survivor
        // byte-for-byte.
        for i in 0..3 {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, b"post".to_vec());
            cluster.round();
        }
        prop_assert!(cluster.run_until_finished(total + 3, 1_000));
        assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(1));
        cluster.assert_ledgers_consistent();
    }
}

// ----------------------------------------------------------------------
// Regression: a page server lying about the ledger tip.
// ----------------------------------------------------------------------

/// A server advertising a self-consistent early `done` (token and entries
/// agree with its under-claimed tip) used to freeze the recoveree short
/// of the real tip. The fix cross-checks the claimed tip against f+1
/// replicas' tip responses: the (f+1)-th largest claim is reachable even
/// if f servers under-claim, so a `done` short of it forces a failover.
#[test]
fn lying_tip_server_is_cross_checked_and_abandoned() {
    let params = ProtocolParams {
        sync_page_bytes: 400,
        view_timeout_ticks: 80,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, 2, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    for i in 0..4 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(4, 400));
    cluster.crash(ReplicaId(3));
    for i in 0..6 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("m{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(10, 1_000));
    let real_tip = cluster.replica(ReplicaId(0)).committed_up_to();
    assert!(real_tip >= SeqNum(8), "enough history for the lie to matter");

    // Replica 1 claims the ledger ends at seq 2 and serves pages that
    // agree with the claim. Recover replica 3 *from the liar*.
    cluster.set_fault(ReplicaId(1), Fault::LieAboutLedgerTip { claim: SeqNum(2) });
    cluster.recover(spec.build_replica(3, Arc::new(CounterApp)), ReplicaId(1));
    assert!(
        cluster.run_until(300, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "sync must complete past the liar: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    cluster.set_fault(ReplicaId(1), Fault::None);
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(report.failovers >= 1, "the lying server must be unmasked: {report:?}");
    assert!(
        cluster.replica(ReplicaId(3)).prepared_up_to() >= real_tip,
        "recoveree must reach the real tip, not the claimed one"
    );
    assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(2));
}

// ----------------------------------------------------------------------
// Regression: crash mid-sync must resume, not restart from genesis.
// ----------------------------------------------------------------------

/// Drive `fresh`'s ledger sync by hand against the cluster's replicas,
/// one message hop at a time, until `stop` holds (or `max_hops` passes).
fn pump_sync_until(
    fresh: &mut Replica,
    cluster: &mut DetCluster,
    outs: Vec<Output>,
    mut stop: impl FnMut(&Replica) -> bool,
    max_hops: usize,
) -> bool {
    let mut pending: VecDeque<(ReplicaId, ProtocolMsg)> = outs
        .into_iter()
        .filter_map(|o| match o {
            Output::SendReplica(to, msg) => Some((to, msg)),
            _ => None,
        })
        .collect();
    for _ in 0..max_hops {
        if stop(fresh) {
            return true;
        }
        let Some((peer, msg)) = pending.pop_front() else {
            return stop(fresh);
        };
        let replies = cluster
            .replicas
            .get_mut(&peer)
            .expect("peer exists")
            .handle(Input::Message { from: NodeId::Replica(fresh.id()), msg });
        for reply in replies {
            let Output::SendReplica(to, m) = reply else { continue };
            if to != fresh.id() {
                continue;
            }
            let outs = fresh.handle(Input::Message { from: NodeId::Replica(peer), msg: m });
            pending.extend(outs.into_iter().filter_map(|o| match o {
                Output::SendReplica(to, msg) => Some((to, msg)),
                _ => None,
            }));
        }
    }
    stop(fresh)
}

/// A replica that crashes mid-state-transfer used to restart the whole
/// transfer from genesis despite holding a valid durable prefix of what
/// it had already applied. The fix: applied batches persist through the
/// durable log, so the restarted replica bootstraps to the frontier it
/// reached and the resumed sync requests only the first missing batch
/// onward — strictly fewer bytes than a genesis transfer.
#[test]
fn crash_mid_sync_resumes_from_durable_prefix() {
    let params = ProtocolParams {
        sync_page_bytes: 300, // many small pages so the crash is mid-flight
        view_timeout_ticks: 80,
        ..ProtocolParams::default()
    };
    let tmp = TempDir::new("mid-sync").expect("tempdir");
    let spec = ClusterSpec::new(4, 2, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    cluster.crash_and_drop(ReplicaId(3));
    for i in 0..12 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{}", i % 4).into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(12, 1_000));

    // First recovery attempt: durable recoveree, driven by hand so it can
    // be killed with the transfer genuinely mid-flight.
    let mut params3 = spec.params.clone();
    params3.data_dir = Some(tmp.subdir("r3").expect("subdir"));
    let mut fresh = spec.build_replica_with(3, Arc::new(CounterApp), params3.clone());
    let outs = fresh.begin_ledger_sync(ReplicaId(0));
    let partially_synced = pump_sync_until(
        &mut fresh,
        &mut cluster,
        outs,
        |r| r.prepared_up_to() >= SeqNum(3) && !r.sync_report().complete,
        200,
    );
    assert!(partially_synced, "sync must be mid-flight: {:?}", fresh.sync_report());
    let tip_at_crash = fresh.prepared_up_to();
    assert!(tip_at_crash >= SeqNum(3), "a real prefix was applied before the crash");
    drop(fresh); // the crash: instance gone, durable prefix stays on disk

    // Restart: the applied prefix is back without any network traffic.
    // The structural repair conservatively re-fetches the trailing batch
    // (nothing after it proves its transaction run ended), so the
    // restored frontier may sit exactly one batch short of the crash tip
    // — never more, and never at genesis.
    let resumed =
        spec.restart_replica(3, Arc::new(CounterApp), params3).expect("restart from dir");
    let resumed_tip = resumed.prepared_up_to();
    assert!(
        resumed_tip.0 + 1 >= tip_at_crash.0 && resumed_tip <= tip_at_crash,
        "the applied frontier must survive the crash: resumed {resumed_tip:?}, \
         crashed at {tip_at_crash:?}"
    );
    assert!(resumed_tip > SeqNum(0), "resume must not restart from genesis");

    // The resumed sync moves only the missing suffix.
    let genesis_bytes = genesis_transfer_bytes(&cluster, ReplicaId(0));
    let suffix_bytes: u64 = cluster
        .replica(ReplicaId(0))
        .ledger_fetch_oracle(resumed_tip.next())
        .iter()
        .map(|e| e.len() as u64)
        .sum();
    assert!(suffix_bytes < genesis_bytes, "prefix non-empty, so the suffix is smaller");
    cluster.recover(resumed, ReplicaId(0));
    assert!(
        cluster.run_until(200, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "resumed sync did not complete: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(
        report.bytes <= suffix_bytes,
        "resume must transfer only the suffix: {} moved, suffix is {suffix_bytes}, \
         a genesis restart would move {genesis_bytes}",
        report.bytes
    );
    assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(1));
}

// ----------------------------------------------------------------------
// Torn-tail crash-point sweep across a view change.
// ----------------------------------------------------------------------

/// Truncate a durable ledger containing inter-batch view-change entries
/// at every chunk boundary (±1 byte) and a stride of interior points, and
/// prove the startup repair is safe at each: the restart succeeds, yields
/// an exact entry-prefix of the reference, grows monotonically with the
/// cut, never keeps a dangling `ViewChangeSet` without its `NewView`, and
/// recovers everything when nothing was torn.
#[test]
fn torn_tail_sweep_across_view_change_never_parses_partial_state() {
    let tmp = TempDir::new("torn-sweep").expect("tempdir");
    let spec = ClusterSpec::new(4, 2, durable_params(1));
    let mut cluster = durable_cluster(&spec, &tmp);
    for i in 0..3 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(3, 400));
    // Kill the primary: the survivors (replica 3 among them) run a view
    // change whose entries land *between* batch segments in the ledger.
    cluster.crash(ReplicaId(0));
    for i in 0..3 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("v{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(6, 1_000), "no progress after view change");
    assert!(cluster.replica(ReplicaId(3)).view().0 >= 1, "view change must have happened");

    // Reference: replica 3's full ledger, then release its file handles.
    let dead = cluster.crash_and_drop(ReplicaId(3)).expect("replica 3");
    let reference: Vec<LedgerEntry> =
        (0..dead.ledger().len())
            .map(|i| dead.ledger().entry(LedgerIdx(i)).expect("entry").clone())
            .collect();
    let vc_idx = reference
        .iter()
        .position(|e| matches!(e, LedgerEntry::ViewChangeSet { .. }))
        .expect("view-change entries in the ledger");
    assert!(
        matches!(reference[vc_idx + 1], LedgerEntry::NewView(_)),
        "the new-view follows its view-change set"
    );
    drop(dead);

    // Walk the chunk framing of the (single) segment file to find every
    // chunk boundary and how many entries each prefix of chunks holds.
    let seg = tmp.path().join("r3").join("ledger-000000.seg");
    let bytes = std::fs::read(&seg).expect("segment file");
    let mut boundaries: Vec<(u64, usize)> = vec![(0, 0)]; // (byte, entries)
    let mut pos = 0usize;
    let mut entries_so_far = 0usize;
    while pos + 8 <= bytes.len() {
        let payload_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let entry_count =
            u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += 8 + payload_len;
        assert!(pos <= bytes.len(), "reference log must not itself be torn");
        entries_so_far += entry_count;
        boundaries.push((pos as u64, entries_so_far));
    }
    assert_eq!(entries_so_far, reference.len(), "every entry is on disk");

    // Crash points: every chunk boundary ±1, plus an interior stride.
    let mut cuts: Vec<u64> = Vec::new();
    for &(b, _) in &boundaries {
        for c in [b.saturating_sub(1), b, b + 1] {
            if c <= bytes.len() as u64 {
                cuts.push(c);
            }
        }
    }
    let stride = (bytes.len() as u64 / 120).max(1);
    cuts.extend((0..bytes.len() as u64).step_by(stride as usize));
    cuts.sort_unstable();
    cuts.dedup();

    let scratch = tmp.subdir("scratch").expect("scratch");
    let mut prev_keep = 0u64;
    let mut keep_at = std::collections::BTreeMap::new();
    for &cut in &cuts {
        std::fs::write(scratch.join("ledger-000000.seg"), &bytes[..cut as usize])
            .expect("write truncated copy");
        let mut params3 = spec.params.clone();
        params3.data_dir = Some(scratch.clone());
        // A cut inside the genesis chunk leaves nothing to restart from —
        // the one legitimate failure, equivalent to an empty data dir.
        let restarted = match spec.restart_replica(3, Arc::new(CounterApp), params3) {
            Ok(r) => r,
            Err(ia_ccf::core::BootstrapError::NoGenesis) => {
                assert!(
                    cut < boundaries[1].0,
                    "cut {cut}: genesis lost although its chunk was intact"
                );
                continue;
            }
            Err(e) => panic!("restart must repair any torn tail (cut {cut}): {e:?}"),
        };
        let keep = restarted.ledger().len();
        // Exact prefix of the reference — partial batches never reach state.
        for i in 0..keep {
            assert_eq!(
                restarted.ledger().entry(LedgerIdx(i)).map(|e| e.to_bytes()),
                Some(reference[i as usize].to_bytes()),
                "cut {cut}: repaired ledger diverged at entry {i}"
            );
        }
        // A view-change set is only ever kept together with its new-view.
        if keep as usize > vc_idx {
            assert!(
                keep as usize > vc_idx + 1,
                "cut {cut}: dangling view-change set without its new-view"
            );
        }
        assert!(keep >= prev_keep, "cut {cut}: repair must be monotone in the crash point");
        prev_keep = keep;
        keep_at.insert(cut, keep);
        drop(restarted);
    }
    // Nothing torn ⇒ every complete segment survives; the trailing batch
    // may be conservatively re-fetched but the view-change entries and
    // every batch before them must be there.
    let full_keep = keep_at[&(bytes.len() as u64)];
    assert!(
        full_keep as usize > vc_idx + 1,
        "untorn restart must retain the complete view-change pair \
         (kept {full_keep} of {}, VC at {vc_idx})",
        reference.len()
    );
}

// ----------------------------------------------------------------------
// Checkpoint fast-path: O(window) recovery instead of O(history).
// ----------------------------------------------------------------------

/// A fresh recoveree restores a recent agreed checkpoint (pinned by the
/// f+1-cross-checked tip claims and verified against the committed
/// pre-prepare chain before anything is applied) and pages only the
/// ledger suffix. The control run — same history, fast-path disabled —
/// replays from genesis and moves several times the bytes.
#[test]
fn checkpoint_seeded_recovery_moves_o_window_bytes() {
    let run = |fast_path: bool| -> (ia_ccf::core::SyncReport, u64) {
        let params = ProtocolParams { view_timeout_ticks: 80, ..ProtocolParams::default() };
        let spec = ClusterSpec::new(4, 2, params).with_config(|c| c.checkpoint_interval = 5);
        let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
        for i in 0..35 {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, format!("k{}", i % 4).into_bytes());
            cluster.round();
        }
        assert!(cluster.run_until_finished(35, 2_000));
        // Replica 3 dies and is replaced by a fresh instance that must
        // catch up on the whole history.
        cluster.crash(ReplicaId(3));
        let genesis_bytes = genesis_transfer_bytes(&cluster, ReplicaId(0));

        let mut params3 = spec.params.clone();
        // The recoveree-side knob: with checkpoints disabled the tip
        // phase never pins an offer and the sync replays from genesis.
        params3.checkpoints_enabled = fast_path;
        cluster.recover(spec.build_replica_with(3, Arc::new(CounterApp), params3), ReplicaId(0));
        assert!(
            cluster.run_until(300, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "sync did not complete (fast_path={fast_path}): {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );
        // A checkpoint-seeded replica holds a suffix ledger: every entry
        // from its base onward must match the survivor byte-for-byte, and
        // the KV digests must agree. (A genesis replay has base 0, so
        // this is the full-ledger comparison there.)
        let (r3, r1) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(1)));
        assert_eq!(r3.ledger().len(), r1.ledger().len(), "global ledger length");
        for i in r3.ledger().base()..r3.ledger().len() {
            assert_eq!(
                r3.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
                r1.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
                "suffix divergence at entry {i}"
            );
        }
        assert_eq!(r3.kv().digest(), r1.kv().digest(), "KV digest");
        let committed = cluster.replica(ReplicaId(1)).committed_up_to();
        let report = cluster.replica(ReplicaId(3)).sync_report();
        if let Some(seed) = report.checkpoint_seed {
            assert!(
                committed.0 - seed.0 <= 3 * 5,
                "the seeded checkpoint must be recent: seed {seed:?}, tip {committed:?}"
            );
        }
        (report, genesis_bytes)
    };

    let (seeded, genesis_bytes) = run(true);
    assert!(
        seeded.checkpoint_seed.is_some(),
        "the fast-path must have been taken: {seeded:?}"
    );
    assert!(
        seeded.bytes < genesis_bytes / 2,
        "checkpoint + suffix must be far below a full replay: moved {} of {genesis_bytes}",
        seeded.bytes
    );

    let (control, control_genesis_bytes) = run(false);
    assert!(control.checkpoint_seed.is_none(), "control must replay from genesis: {control:?}");
    assert!(
        control.bytes >= control_genesis_bytes,
        "genesis replay moves the whole history: {} vs {control_genesis_bytes}",
        control.bytes
    );
    assert!(
        seeded.bytes * 2 < control.bytes,
        "fast-path must beat genesis replay by a wide margin: {} vs {}",
        seeded.bytes,
        control.bytes
    );
}

// ----------------------------------------------------------------------
// Double crash: a checkpoint-seeded replica stays durable across its
// next crash and restarts locally.
// ----------------------------------------------------------------------

/// The seeded layout's crash-repair contract end to end: replica 3 dies
/// and loses its disk, a durable replacement takes the checkpoint
/// fast-path (persisting `checkpoint.cp` plus a suffix segment run),
/// commits more history, then dies again mid-commit with a torn tail.
/// The second restart must come back *locally* — seed verified from
/// disk, suffix tail structurally repaired — and fetch only the batches
/// past its durable frontier: zero network bytes for the prefix.
#[test]
fn double_crashed_seeded_replica_restarts_locally_and_matches_survivor() {
    let tmp = TempDir::new("double-crash").expect("tempdir");
    let params = ProtocolParams {
        fsync_interval_batches: 1,
        view_timeout_ticks: 80,
        durable_roll_bytes: 2048, // small: the suffix run spans files
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, 2, params).with_config(|c| c.checkpoint_interval = 5);
    let mut cluster = durable_cluster(&spec, &tmp);
    for i in 0..30 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{}", i % 4).into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(30, 2_000));

    // First crash: the replica dies and its disk dies with it.
    cluster.crash_and_drop(ReplicaId(3)).expect("replica 3 present");
    std::fs::remove_dir_all(tmp.path().join("r3")).expect("lose the disk");

    // The durable replacement recovers over the network; the fast-path
    // must seed it and persist the seeded layout.
    let mut params3 = spec.params.clone();
    params3.data_dir = Some(tmp.subdir("r3").expect("subdir"));
    cluster.recover(spec.build_replica_with(3, Arc::new(CounterApp), params3.clone()), ReplicaId(0));
    assert!(
        cluster.run_until(300, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "first recovery did not complete: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let first = cluster.replica(ReplicaId(3)).sync_report();
    assert!(first.checkpoint_seed.is_some(), "first recovery must take the fast-path: {first:?}");
    {
        let r3 = cluster.replica(ReplicaId(3));
        let log = r3.ledger().durable().expect("durability re-attached after seeding");
        assert!(log.base() > 0, "the on-disk run must be a suffix, not full history");
        assert!(!r3.ledger().durability_lost(), "seeding must not burn the gauge");
    }

    // More committed history on the seeded suffix, then the second
    // crash: a request in flight and a torn tail (mid-fsync-window cut).
    for i in 0..6 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("m{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(36, 1_000));
    cluster.submit(spec.clients[0].0, CounterApp::INCR, b"in-flight".to_vec());
    let dead = cluster.crash_and_drop(ReplicaId(3)).expect("replica 3 present");
    let log = dead.ledger().durable().expect("durable log attached");
    let (synced, written, tail) = (log.synced_len(), log.written_len(), log.tail_file_path());
    let completed = log.completed_len();
    drop(dead);
    let cut = synced + (written - synced) / 2;
    let file = std::fs::OpenOptions::new().write(true).open(&tail).expect("tail file");
    file.set_len(cut - completed).expect("truncate to crash point");
    drop(file);

    // Survivors keep going while replica 3 is down.
    for i in 0..3 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("p{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(40, 1_000));

    // Second restart: local. The seed file and suffix segments rebuild
    // the replica to its durable frontier with no network traffic.
    let restarted =
        spec.restart_replica(3, Arc::new(CounterApp), params3).expect("seeded local restart");
    assert!(restarted.ledger().base() > 0, "restarted as a suffix ledger");
    let durable_tip = restarted.prepared_up_to();
    assert!(
        durable_tip >= first.checkpoint_seed.unwrap(),
        "local restart must reach at least the seed point: {durable_tip:?}"
    );
    let genesis_bytes = genesis_transfer_bytes(&cluster, ReplicaId(0));
    let suffix_bytes: u64 = cluster
        .replica(ReplicaId(0))
        .ledger_fetch_oracle(durable_tip.next())
        .iter()
        .map(|e| e.len() as u64)
        .sum();

    cluster.recover(restarted, ReplicaId(0));
    assert!(
        cluster.run_until(300, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "second recovery did not complete: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(
        report.checkpoint_seed.is_none(),
        "the prefix must come from disk, not a second network seed: {report:?}"
    );
    assert!(
        report.bytes <= suffix_bytes,
        "only the missed suffix crosses the network: moved {} of suffix {suffix_bytes} \
         (a genesis transfer would be {genesis_bytes})",
        report.bytes
    );

    // Rejoin consensus, then demand the suffix is byte-identical to a
    // never-crashed survivor and durability is attached again.
    for i in 0..3 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, b"post".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(43, 1_000));
    let (r3, r1) = (cluster.replica(ReplicaId(3)), cluster.replica(ReplicaId(1)));
    assert_eq!(r3.ledger().len(), r1.ledger().len(), "global ledger length");
    for i in r3.ledger().base()..r3.ledger().len() {
        assert_eq!(
            r3.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            r1.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            "suffix divergence at entry {i}"
        );
    }
    assert_eq!(r3.kv().digest(), r1.kv().digest(), "KV digest");
    let log = r3.ledger().durable().expect("durable again after the second restart");
    assert!(log.base() > 0, "still the suffix layout");
    cluster.assert_ledgers_consistent();
}

// ----------------------------------------------------------------------
// A fresh replica must not silently destroy an occupied data dir.
// ----------------------------------------------------------------------

/// `Replica::new` used to claim a `data_dir` holding a previous
/// instance's segment files and silently reconcile that history down to
/// genesis — destroying it. Pin the fix: occupied directories are a
/// typed refusal, `restart_from_dir` remains the restart path, and the
/// explicit `wipe_existing_data_dir` opt-in claims the directory fresh.
#[test]
fn fresh_replica_refuses_occupied_data_dir_unless_wipe_opted_in() {
    use ia_ccf::core::ReplicaInitError;
    let tmp = TempDir::new("occupied-dir").expect("tempdir");
    let dir = tmp.subdir("r0").expect("subdir");
    let spec = ClusterSpec::new(4, 2, durable_params(1));
    let mut cluster = DetCluster::with_replica_builder(&spec, |rank| {
        let mut p = spec.params.clone();
        if rank == 0 {
            p.data_dir = Some(dir.clone());
        }
        spec.build_replica_with(rank, Arc::new(CounterApp), p)
    });
    for i in 0..2 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(2, 400));
    let dead = cluster.crash_and_drop(ReplicaId(0)).expect("replica 0 present");
    let history_len = dead.ledger().len();
    assert!(history_len > 1, "real history on disk");
    drop(dead);

    let mut params0 = spec.params.clone();
    params0.data_dir = Some(dir.clone());
    let fresh = Replica::new(
        ReplicaId(0),
        spec.replica_keys[0].clone(),
        spec.genesis.clone(),
        Arc::new(CounterApp),
        params0.clone(),
        spec.client_keys(),
    );
    assert!(
        matches!(fresh, Err(ReplicaInitError::DataDirNotEmpty(ref d)) if *d == dir),
        "occupied directory must be a typed refusal"
    );

    // The legitimate restart path still works and keeps the history.
    let restarted =
        spec.restart_replica(0, Arc::new(CounterApp), params0.clone()).expect("restart");
    assert!(restarted.ledger().len() > 1, "history survived the refusal");
    drop(restarted);

    // The opt-in wipes and claims the directory for a fresh genesis.
    params0.wipe_existing_data_dir = true;
    let fresh = Replica::new(
        ReplicaId(0),
        spec.replica_keys[0].clone(),
        spec.genesis.clone(),
        Arc::new(CounterApp),
        params0,
        spec.client_keys(),
    )
    .expect("wipe opt-in claims the directory");
    assert_eq!(fresh.ledger().len(), 1, "genesis only after the wipe");
    assert!(fresh.ledger().durable().is_some(), "durability attached on the wiped dir");
}

// ----------------------------------------------------------------------
// Durable I/O failure on the consensus hot path: detach, don't die.
// ----------------------------------------------------------------------

/// A durable write failure mid-consensus used to panic the replica via
/// `.expect` on the append path. Now it detaches the mirror with a
/// one-shot warning, latches the `durability_lost` gauge and keeps
/// committing — safety rests on the quorum, not this replica's disk.
#[test]
fn durable_write_failure_mid_consensus_detaches_but_keeps_committing() {
    let tmp = TempDir::new("durable-fault").expect("tempdir");
    let spec = ClusterSpec::new(4, 2, durable_params(1));
    let mut cluster = durable_cluster(&spec, &tmp);
    for i in 0..2 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(2, 400));

    // Arm a one-shot write failure on replica 2's next durable append.
    {
        let r2 = &mut cluster.replicas.get_mut(&ReplicaId(2)).expect("replica 2").inner;
        assert!(!r2.ledger().durability_lost());
        r2.ledger_harness_mut().durable_mut().expect("attached").inject_write_error();
    }

    // Consensus continues across the failure — including replica 2.
    for i in 0..4 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("m{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(6, 1_000), "consensus must survive the disk failure");
    let r2 = cluster.replica(ReplicaId(2));
    assert!(r2.ledger().durability_lost(), "the gauge must latch");
    assert!(r2.ledger().durable().is_none(), "the mirror must detach");
    assert_ledgers_byte_identical(&cluster, ReplicaId(2), ReplicaId(1));
    cluster.assert_ledgers_consistent();
}
