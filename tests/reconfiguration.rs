//! End-to-end reconfiguration (§5): a referendum adds a member and a
//! replica; the protocol runs the end-of-configuration / checkpoint /
//! start-of-configuration schedule; a new replica bootstraps from the
//! ledger and joins; clients verify receipts across the boundary through
//! the governance receipt chain.

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::{ProtocolParams, Replica};
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, Configuration, GovAction, KeyPair, LedgerIdx, MemberDesc, MemberId, ReplicaDesc,
    ReplicaId, Request, RequestAction, SignedRequest,
};

/// Build the next configuration: same members plus member 4, who operates
/// new replica 4.
fn next_config(genesis: &Configuration) -> (Configuration, KeyPair, KeyPair) {
    let mut config = genesis.clone();
    config.number = genesis.number + 1;
    let member_kp = KeyPair::from_label("member-4");
    let replica_kp = KeyPair::from_label("replica-4");
    config.members.push(MemberDesc { id: MemberId(4), key: member_kp.public() });
    let payload = ReplicaDesc::endorsement_payload(ReplicaId(4), &replica_kp.public());
    config.replicas.push(ReplicaDesc {
        id: ReplicaId(4),
        key: replica_kp.public(),
        operator: MemberId(4),
        endorsement: member_kp.sign(&payload),
    });
    (config, member_kp, replica_kp)
}

fn gov_request(
    member: MemberId,
    key: &KeyPair,
    gt_hash: ia_ccf_types::Digest,
    action: GovAction,
    req_id: u64,
) -> SignedRequest {
    SignedRequest::sign(
        Request {
            action: RequestAction::Governance(action),
            client: ClientId(member.0 as u64),
            gt_hash,
            min_index: LedgerIdx(0),
            req_id,
        },
        key,
    )
}

#[test]
fn referendum_reconfigures_and_new_replica_joins() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;
    let gt = cluster.replica(ReplicaId(0)).gt_hash();
    let (new_config, _m4, replica4_kp) = next_config(&spec.genesis);

    // Warm up with some app traffic.
    for _ in 0..3 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(3, 100));

    // --- Referendum: propose + votes from 3 members (threshold = 3). ---
    cluster.submit_raw(
        ClientId(0),
        gov_request(
            MemberId(0),
            &spec.member_keys[0],
            gt,
            GovAction::Propose { proposal_id: 1, new_config: new_config.clone() },
            1,
        ),
    );
    cluster.round();
    for m in 0..3u32 {
        cluster.submit_raw(
            ClientId(m as u64),
            gov_request(
                MemberId(m),
                &spec.member_keys[m as usize],
                gt,
                GovAction::Vote { proposal_id: 1, approve: true },
                10 + m as u64,
            ),
        );
        cluster.round();
    }

    // Drive until every original replica activates configuration 1.
    assert!(
        cluster.run_until(400, |c| {
            c.replicas
                .iter()
                .filter(|(id, _)| id.0 < 4)
                .all(|(_, r)| r.inner.active_config().number == 1)
        }),
        "configuration 1 never activated: views/configs: {:?}",
        cluster
            .replicas
            .values()
            .map(|r| (r.inner.view(), r.inner.active_config().number))
            .collect::<Vec<_>>()
    );

    // The governance chain served to clients now contains the referendum
    // and the boundary receipt, and verifies from genesis.
    let chain_links = cluster.replica(ReplicaId(1)).gov_chain();
    assert!(
        chain_links.len() >= 5,
        "expect propose + 3 votes + boundary, got {}",
        chain_links.len()
    );
    let mut chain = ia_ccf::governance::chain::GovernanceChain::new();
    for l in chain_links {
        chain.push(l.clone());
    }
    let history = chain.verify(&spec.genesis).expect("governance chain verifies");
    assert_eq!(history.latest().number, 1);
    assert_eq!(history.latest().n(), 5);

    // --- A new replica bootstraps from a current ledger and joins. ---
    let entries = cluster.replica(ReplicaId(0)).ledger().entries().to_vec();
    let new_replica = Replica::bootstrap(
        ReplicaId(4),
        replica4_kp,
        Arc::new(CounterApp),
        ProtocolParams::default(),
        spec.client_keys(),
        &entries,
    )
    .expect("bootstrap replays the ledger");
    assert_eq!(new_replica.active_config().number, 1);
    cluster.add_replica(new_replica);

    // --- Post-reconfiguration traffic: client receipts verify across the
    // boundary via the governance chain (§5.2). ---
    for _ in 0..5 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(
        cluster.run_until_finished(8, 400),
        "post-reconfig transactions stalled: finished = {}",
        cluster.finished.len()
    );
    for (_, tx) in &cluster.finished[3..] {
        let receipt = tx.receipt.as_ref().expect("receipt");
        // Verified by the client already (under config 1, via the fetched
        // governance chain); double-check under the new configuration.
        receipt.verify(history.latest()).expect("receipt valid under config 1");
    }

    // The new replica executes and stays consistent.
    assert!(
        cluster.run_until(200, |c| c.replica(ReplicaId(4)).committed_up_to()
            >= c.replica(ReplicaId(0)).committed_up_to().minus(2)),
        "new replica lags: {} vs {}",
        cluster.replica(ReplicaId(4)).committed_up_to(),
        cluster.replica(ReplicaId(0)).committed_up_to()
    );
    let counter = |r: &Replica| {
        r.kv()
            .get(b"k")
            .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
            .unwrap_or(0)
    };
    assert_eq!(counter(cluster.replica(ReplicaId(4))), 8);
    cluster.assert_ledgers_consistent();
}

#[test]
fn rejected_referendum_changes_nothing() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let gt = cluster.replica(ReplicaId(0)).gt_hash();
    let (new_config, _, _) = next_config(&spec.genesis);

    cluster.submit_raw(
        ClientId(0),
        gov_request(
            MemberId(0),
            &spec.member_keys[0],
            gt,
            GovAction::Propose { proposal_id: 9, new_config },
            1,
        ),
    );
    cluster.round();
    // Only rejections arrive.
    for m in 0..4u32 {
        cluster.submit_raw(
            ClientId(m as u64),
            gov_request(
                MemberId(m),
                &spec.member_keys[m as usize],
                gt,
                GovAction::Vote { proposal_id: 9, approve: false },
                20 + m as u64,
            ),
        );
        cluster.round();
    }
    for _ in 0..20 {
        cluster.round();
    }
    for r in cluster.replicas.values() {
        assert_eq!(r.inner.active_config().number, 0, "no reconfiguration may happen");
    }
}

#[test]
fn non_member_governance_is_ignored() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let gt = cluster.replica(ReplicaId(0)).gt_hash();
    let (new_config, _, _) = next_config(&spec.genesis);
    let outsider = KeyPair::from_label("not-a-member");

    cluster.submit_raw(
        ClientId(99),
        gov_request(
            MemberId(99),
            &outsider,
            gt,
            GovAction::Propose { proposal_id: 1, new_config },
            1,
        ),
    );
    for _ in 0..10 {
        cluster.round();
    }
    for r in cluster.replicas.values() {
        assert_eq!(r.inner.active_config().number, 0);
        assert_eq!(r.inner.gov_chain().len(), 0, "no governance tx may be recorded");
    }
}
