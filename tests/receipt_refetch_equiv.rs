//! Differential harness for the cache-backed receipt read path.
//!
//! PR "cache-backed receipt emission" replaced `serve_receipt_refetch`'s
//! O(batches × txs) linear scan with a `tx_hash → (seq, pos)` locator
//! index, memoized certificates and frozen Merkle paths. The contract:
//! the *bytes* a client receives are unchanged — for any schedule, for
//! hits and for misses (unknown transactions, transactions pruned past
//! the retention window). This harness proves it differentially against
//! `Replica::refetch_oracle_linear`, the seed's scan preserved as a
//! reference oracle, and pins the incremental governance-receipt serving
//! (`from_index`) semantics.

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams};
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, Digest, GovAction, LedgerIdx, ProtocolMsg, ReplicaId, Request, RequestAction,
    SignedRequest, Wire,
};
use proptest::prelude::*;

/// The encoded client-bound messages a replica emits for one input.
fn client_sends(outputs: Vec<Output>) -> Vec<(ClientId, Vec<u8>)> {
    outputs
        .into_iter()
        .filter_map(|o| match o {
            Output::SendClient(to, msg) => Some((to, msg.to_bytes())),
            _ => None,
        })
        .collect()
}

/// Ask `replica` for a receipt re-fetch through the production (indexed)
/// path and through the linear-scan oracle; both as encoded bytes.
#[allow(clippy::type_complexity)]
fn refetch_both(
    cluster: &mut DetCluster,
    id: ReplicaId,
    client: ClientId,
    tx_hash: Digest,
) -> (Vec<(ClientId, Vec<u8>)>, Vec<Vec<u8>>) {
    let replica = &mut cluster.replicas.get_mut(&id).expect("replica").inner;
    let oracle: Vec<Vec<u8>> =
        replica.refetch_oracle_linear(tx_hash).iter().map(|m| m.to_bytes()).collect();
    let indexed = client_sends(replica.handle(Input::Message {
        from: NodeId::Client(client),
        msg: ProtocolMsg::FetchReceipt { tx_hash },
    }));
    (indexed, oracle)
}

/// Drive a cluster through `n_txs` counter increments with a round every
/// `cadence` submissions, then compare indexed vs. linear re-fetch on
/// every live replica for every executed transaction plus unknown ones.
fn check_schedule(n_txs: usize, cadence: usize, retention: u64) {
    let params = ProtocolParams {
        exec_retention_batches: retention,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, 2, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    for i in 0..n_txs {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{}", i % 5).into_bytes());
        if (i + 1) % cadence == 0 {
            cluster.round();
        }
    }
    assert!(
        cluster.run_until_finished(n_txs, 1_000),
        "finished {}/{n_txs}",
        cluster.finished.len()
    );

    let mut hashes: Vec<Digest> =
        cluster.finished.iter().map(|(_, tx)| tx.request.digest()).collect();
    // Unknown transactions: misses must be silent on both paths.
    hashes.push(ia_ccf_crypto::hash_bytes(b"never-submitted-1"));
    hashes.push(ia_ccf_crypto::hash_bytes(b"never-submitted-2"));

    let client = spec.clients[0].0;
    let mut hits = 0usize;
    for r in 0..4u32 {
        let id = ReplicaId(r);
        for &h in &hashes {
            let (indexed, oracle) = refetch_both(&mut cluster, id, client, h);
            let indexed_bytes: Vec<Vec<u8>> =
                indexed.iter().map(|(_, b)| b.clone()).collect();
            assert_eq!(
                indexed_bytes, oracle,
                "replica {r}: indexed re-fetch diverged from the linear oracle"
            );
            assert!(indexed.iter().all(|(to, _)| *to == client));
            if !indexed.is_empty() {
                hits += 1;
            }
        }
    }
    // Transactions inside the retention window must actually be served
    // (the differential check alone would pass if both paths went mute).
    assert!(hits > 0, "no re-fetch was served at all");

    // The production path went through the locator, not a scan.
    let stats = cluster.replica(ReplicaId(1)).receipt_cache_stats();
    assert!(stats.locator_hits + stats.locator_misses > 0, "locator index was bypassed");
}

#[test]
fn refetch_equivalence_simple_schedule() {
    check_schedule(10, 3, 64);
}

#[test]
fn refetch_equivalence_with_gc_misses() {
    // Retention of 4 batches (the floor, 2 × pipeline depth): singleton
    // batches push early transactions out of the window, so re-fetching
    // them is a miss — on both paths, byte-for-byte (i.e. silence).
    check_schedule(24, 1, 4);
}

#[test]
fn gc_prunes_locator_and_serving_window() {
    let params = ProtocolParams { exec_retention_batches: 4, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;
    for i in 0..16 {
        cluster.submit(client, CounterApp::INCR, format!("g{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(16, 500));
    let first = cluster.finished.first().expect("finished").1.request.digest();
    let last = cluster.finished.last().expect("finished").1.request.digest();
    let (idx_first, oracle_first) = refetch_both(&mut cluster, ReplicaId(1), client, first);
    assert!(idx_first.is_empty(), "pruned tx must not be served");
    assert!(oracle_first.is_empty(), "oracle must agree on the miss");
    let (idx_last, oracle_last) = refetch_both(&mut cluster, ReplicaId(1), client, last);
    assert!(!idx_last.is_empty(), "recent tx must be served");
    assert_eq!(
        idx_last.into_iter().map(|(_, b)| b).collect::<Vec<_>>(),
        oracle_last
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For random schedules and retention windows, the indexed re-fetch
    /// is byte-identical to the seed's linear scan on every replica —
    /// hits and misses alike.
    #[test]
    fn refetch_matches_linear_oracle(
        n_txs in 4usize..28,
        cadence in 1usize..5,
        small_retention in any::<bool>(),
    ) {
        check_schedule(n_txs, cadence, if small_retention { 4 } else { 64 });
    }
}

// ----------------------------------------------------------------------
// Incremental governance-receipt serving (`from_index`).
// ----------------------------------------------------------------------

/// Commit one governance transaction, then fetch the chain with various
/// `from_index` values: 0 serves everything, an index at the last
/// verified transaction serves nothing new.
#[test]
fn gov_receipts_served_incrementally() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let gt = cluster.replica(ReplicaId(0)).gt_hash();

    // A recorded (non-passing) proposal: one governance link, no boundary.
    let mut next = spec.genesis.clone();
    next.number = spec.genesis.number + 1;
    let propose = SignedRequest::sign(
        Request {
            action: RequestAction::Governance(GovAction::Propose {
                proposal_id: 1,
                new_config: next,
            }),
            client: ClientId(0),
            gt_hash: gt,
            min_index: LedgerIdx(0),
            req_id: 1,
        },
        &spec.member_keys[0],
    );
    cluster.submit_raw(ClientId(0), propose);
    for _ in 0..8 {
        cluster.round();
    }
    let replica = &mut cluster.replicas.get_mut(&ReplicaId(1)).expect("replica").inner;
    assert!(!replica.gov_chain().is_empty(), "governance receipt must be chained");
    let gov_index = replica.gov_chain()[0]
        .receipt()
        .tx_index()
        .expect("governance links carry a tx index");

    let fetch = |replica: &mut ia_ccf::core::Replica, from: LedgerIdx| -> usize {
        let outs = replica.handle(Input::Message {
            from: NodeId::Client(ClientId(1)),
            msg: ProtocolMsg::FetchGovReceipts { from_index: from },
        });
        match client_sends(outs).as_slice() {
            [(_, bytes)] => match ProtocolMsg::from_bytes(bytes).expect("decodes") {
                ProtocolMsg::GovReceipts { receipts } => receipts.len(),
                other => panic!("expected GovReceipts, got {other:?}"),
            },
            other => panic!("expected one response, got {}", other.len()),
        }
    };

    assert_eq!(fetch(replica, LedgerIdx(0)), 1, "fresh client gets the full chain");
    assert_eq!(
        fetch(replica, gov_index),
        0,
        "a client already verified up to the link gets an empty (incremental) response"
    );
    assert_eq!(
        fetch(replica, LedgerIdx(gov_index.0.saturating_sub(1))),
        1,
        "an index below the link still serves it"
    );
}
