//! Determinism smoke test: the single-threaded simulator must be fully
//! reproducible — two clusters built from the same spec ("seed") and
//! driven by the same schedule produce byte-identical ledgers, identical
//! KV digests and identical receipt indices. This is what makes protocol
//! bugs replayable instead of flaky (see `ia_ccf_sim::det`), and what the
//! auditor's replay relies on (§4: re-executing the ledger must be
//! deterministic to compare results against receipts).

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{LedgerIdx, ReplicaId, Wire};

/// Per-replica wire-encoded ledger entries.
type EncodedLedgers = Vec<Vec<Vec<u8>>>;

/// Drive one cluster through a fixed mixed schedule and return
/// everything observable: per-replica encoded ledgers, KV digests, and
/// the receipt indices in completion order.
fn run_schedule(spec: &ClusterSpec) -> (EncodedLedgers, Vec<[u8; 32]>, Vec<u64>) {
    let mut cluster = DetCluster::new(spec, Arc::new(CounterApp));
    let mut submitted = 0usize;
    for i in 0..30u64 {
        let client = spec.clients[(i % spec.clients.len() as u64) as usize].0;
        cluster.submit(client, CounterApp::INCR, format!("k{}", i % 5).into_bytes());
        submitted += 1;
        if i % 3 == 0 {
            cluster.round();
        }
    }
    assert!(
        cluster.run_until_finished(submitted, 500),
        "only {}/{submitted} finished",
        cluster.finished.len()
    );
    cluster.assert_ledgers_consistent();

    let n = spec.genesis.n() as u32;
    let mut ledgers = Vec::new();
    let mut kv_digests = Vec::new();
    for r in 0..n {
        let replica = cluster.replica(ReplicaId(r));
        let len = replica.ledger().len();
        let entries: Vec<Vec<u8>> = (0..len)
            .map(|i| replica.ledger().entry(LedgerIdx(i)).expect("entry exists").to_bytes())
            .collect();
        ledgers.push(entries);
        kv_digests.push(*replica.kv().digest().as_bytes());
    }
    let indices: Vec<u64> = cluster
        .finished
        .iter()
        .map(|(_, tx)| tx.receipt.as_ref().expect("receipt").tx_index().expect("tx index").0)
        .collect();
    (ledgers, kv_digests, indices)
}

#[test]
fn same_seed_same_schedule_identical_ledgers() {
    let spec_a = ClusterSpec::new(4, 2, ProtocolParams::default());
    let spec_b = ClusterSpec::new(4, 2, ProtocolParams::default());

    let (ledgers_a, kv_a, idx_a) = run_schedule(&spec_a);
    let (ledgers_b, kv_b, idx_b) = run_schedule(&spec_b);

    assert!(!ledgers_a[0].is_empty(), "schedule must produce ledger entries");
    assert_eq!(ledgers_a, ledgers_b, "ledgers must be byte-identical run-to-run");
    assert_eq!(kv_a, kv_b, "KV digests must match run-to-run");
    assert_eq!(idx_a, idx_b, "receipt indices must match run-to-run");
}

#[test]
fn different_schedules_diverge() {
    // Sanity check that the comparison above is not vacuous: a different
    // schedule produces a different ledger.
    let spec = ClusterSpec::new(4, 2, ProtocolParams::default());
    let (ledgers_a, ..) = run_schedule(&spec);

    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    cluster.submit(spec.clients[0].0, CounterApp::INCR, b"other-key".to_vec());
    assert!(cluster.run_until_finished(1, 200));
    let replica = cluster.replica(ReplicaId(0));
    let entries: Vec<Vec<u8>> = (0..replica.ledger().len())
        .map(|i| replica.ledger().entry(LedgerIdx(i)).expect("entry").to_bytes())
        .collect();
    assert_ne!(ledgers_a[0], entries);
}
