//! The persistent worker pool's replica-facing contract.
//!
//! Two properties beyond the pool crate's own unit tests:
//!
//! 1. **Lifecycle**: the pool's worker threads live exactly as long as
//!    the replica that owns them — dropping the replica joins every
//!    worker and the `live_pool_threads` gauge reads zero (no leaked
//!    threads across replica restarts).
//!
//! 2. **Cross-batch prewarm determinism**: a backup that receives
//!    pre-prepares *out of order* stashes the future batch and — on a
//!    multi-thread pool — starts verifying its client signatures on the
//!    pool while the current batch executes. That overlap is a pure
//!    latency optimisation: the ledger bytes and KV digest must be
//!    byte-identical to an in-order delivery of the very same messages.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams, Replica};
use ia_ccf_sim::ClusterSpec;
use ia_ccf_types::{
    LedgerEntry, LedgerIdx, ProtocolMsg, Request, RequestAction, SignedRequest, Wire,
};

#[test]
fn dropping_the_replica_joins_pool_workers_and_gauge_reads_zero() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default()).with_pool_threads(4);
    let replica = spec.build_replica(0, Arc::new(CounterApp));
    assert_eq!(replica.pool().threads(), 4);
    assert_eq!(replica.pool().live_pool_threads(), 4, "all workers must be up");
    let gauge = replica.pool().thread_gauge();
    drop(replica);
    assert_eq!(
        gauge.load(Ordering::SeqCst),
        0,
        "dropping the replica must join every pool worker"
    );
}

/// The wire bytes of every `⟨t, i, o⟩` entry in a replica's ledger.
fn tx_entries(r: &Replica) -> Vec<Vec<u8>> {
    r.ledger()
        .entries()
        .iter()
        .filter(|e| matches!(e, LedgerEntry::Tx(_)))
        .map(|e| e.to_bytes())
        .collect()
}

fn collect_pps(outs: Vec<Output>, pps: &mut Vec<ProtocolMsg>) {
    for out in outs {
        if let Output::BroadcastReplicas(msg @ ProtocolMsg::PrePrepare { .. }) = out {
            pps.push(msg);
        }
    }
}

/// Hand-drive a primary into emitting two pipelined pre-prepares, then
/// deliver them to a backup either in order or reversed. Returns the
/// backup's tx ledger bytes, its KV digest and its pool task counter.
fn drive(deliver_reversed: bool) -> (Vec<Vec<u8>>, [u8; 32], u64) {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default()).with_pool_threads(4);
    let app = Arc::new(CounterApp);
    let mut primary = spec.build_replica(0, Arc::clone(&app) as _);
    let mut backup = spec.build_replica(1, app as _);
    let gt = primary.gt_hash();
    let (client, kp) = (spec.clients[0].0, &spec.clients[0].1);

    let reqs: Vec<SignedRequest> = (0..8u64)
        .map(|i| {
            SignedRequest::sign(
                Request {
                    action: RequestAction::App {
                        proc: CounterApp::INCR,
                        args: format!("k{i}").into_bytes(),
                    },
                    client,
                    gt_hash: gt,
                    min_index: LedgerIdx(0),
                    req_id: i + 1,
                },
                kp,
            )
        })
        .collect();

    // Two batches of four: feed the requests, tick until the batch timer
    // proposes. The evidence gate allows both (pipeline depth ≥ 2), so
    // the primary ends up with two outstanding pre-prepares.
    let mut pps: Vec<ProtocolMsg> = Vec::new();
    for half in reqs.chunks(4) {
        for r in half {
            let outs = primary.handle(Input::Message {
                from: NodeId::Client(client),
                msg: ProtocolMsg::Request(r.clone()),
            });
            collect_pps(outs, &mut pps);
        }
        let want = pps.len() + 1;
        for _ in 0..5 {
            if pps.len() >= want {
                break;
            }
            let outs = primary.handle(Input::Tick);
            collect_pps(outs, &mut pps);
        }
    }
    assert_eq!(pps.len(), 2, "primary must pipeline two pre-prepares");

    // The backup learns the request bodies (client broadcast), then the
    // pre-prepares arrive in the chosen order.
    for r in &reqs {
        backup.handle(Input::Message {
            from: NodeId::Client(client),
            msg: ProtocolMsg::Request(r.clone()),
        });
    }
    assert!(tx_entries(&backup).is_empty(), "requests alone must not execute");
    let order: [usize; 2] = if deliver_reversed { [1, 0] } else { [0, 1] };
    for (step, i) in order.into_iter().enumerate() {
        backup.handle(Input::Message {
            from: NodeId::Replica(primary.id()),
            msg: pps[i].clone(),
        });
        if deliver_reversed && step == 0 {
            // The future pre-prepare is stashed: nothing executed yet.
            // Processing batch 1 below prewarms this batch's signatures
            // on the pool while batch 1 executes, and the stash retry
            // harvests the results.
            assert!(tx_entries(&backup).is_empty(), "future pp must stash, not execute");
        }
    }
    let entries = tx_entries(&backup);
    assert_eq!(entries.len(), reqs.len(), "both batches must be executed (ledgered)");
    (entries, *backup.kv().digest().as_bytes(), backup.pool().tasks_completed())
}

#[test]
fn out_of_order_preprepares_prewarm_on_pool_and_stay_byte_identical() {
    let (in_order, digest_in_order, tasks_in_order) = drive(false);
    let (reversed, digest_reversed, tasks_reversed) = drive(true);
    assert_eq!(
        reversed, in_order,
        "out-of-order delivery (stash + prewarmed verification) changed ledger bytes"
    );
    assert_eq!(digest_reversed, digest_in_order, "KV digests diverged");
    assert!(tasks_in_order > 0, "multi-thread backup must verify on the pool");
    assert!(tasks_reversed > 0, "prewarmed backup must verify on the pool");
}
