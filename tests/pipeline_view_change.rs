//! Pipelined batches across a view change (Lemma 1): a batch that was
//! *executed but not committed* when the view changed must be rolled back
//! via its `BatchMark` and re-executed identically in the new view — same
//! request, same transaction index, same result, byte-identical ledger
//! `⟨t, i, o⟩` entry — and the post-view-change ledger must still audit
//! clean.
//!
//! The scenario: every replica drops its outbound commits
//! (`Fault::DropCommits`), so the batch's pre-prepare and prepares flow —
//! every replica early-executes and *prepares* the batch — but nobody can
//! ever commit it. Then the primary crashes and the survivors run a view
//! change: the new primary resets the pipeline, rolls the executed batch
//! back to its `BatchMark`, and re-proposes it with byte-identical
//! content in the new view, where re-execution must reproduce it exactly
//! (early execution is deterministic, Lemma 2).

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, LedgerPackage, StoredReceipt};
use ia_ccf::core::app::CounterApp;
use ia_ccf::core::byzantine::Fault;
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, GovAction, KeyPair, LedgerEntry, MemberDesc, MemberId, ReplicaDesc, ReplicaId,
    Request, RequestAction, SeqNum, SignedRequest, Wire,
};

/// The wire bytes of every `⟨t, i, o⟩` entry in a replica's ledger.
fn tx_entries(cluster: &DetCluster, id: ReplicaId) -> Vec<Vec<u8>> {
    cluster
        .replica(id)
        .ledger()
        .entries()
        .iter()
        .filter(|e| matches!(e, LedgerEntry::Tx(_)))
        .map(|e| e.to_bytes())
        .collect()
}

/// Drive a cluster into the frozen state: one batch executed and prepared
/// on every replica, committed nowhere.
fn freeze_one_batch(cluster: &mut DetCluster, client: ia_ccf_types::ClientId) {
    freeze_one_batch_at(cluster, client, SeqNum(1));
}

#[test]
fn executed_uncommitted_batch_rolls_back_and_reexecutes_identically() {
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;

    freeze_one_batch(&mut cluster, client);
    // The executed batch is in every ledger; capture a backup's copy.
    let before: Vec<Vec<u8>> = tx_entries(&cluster, ReplicaId(1));
    assert_eq!(before.len(), 1, "batch must be executed (ledgered) before the view change");

    // Crash the view-0 primary and heal the survivors. Their liveness
    // timers fire (prepared-but-uncommitted work is pending work) and
    // view 1 takes over.
    cluster.crash(ReplicaId(0));
    for r in 1..4 {
        cluster.set_fault(ReplicaId(r), Fault::None);
    }
    assert!(
        cluster.run_until(400, |c| c.min_committed() >= SeqNum(1)),
        "rolled-back batch must recommit in the new view"
    );

    // The survivors moved past view 0 and the batch committed there.
    for r in 1..4 {
        assert!(cluster.replica(ReplicaId(r)).view().0 >= 1, "replica {r} stuck in view 0");
    }
    // The new view re-executed the batch *identically*: same request,
    // same transaction index, same result — the ledger's ⟨t, i, o⟩ entry
    // is byte-for-byte the one that was rolled back.
    for r in 1..4 {
        let after = tx_entries(&cluster, ReplicaId(r));
        assert_eq!(after, before, "replica {r}: re-executed entry must be byte-identical");
    }
    // Exactly-once execution: the counter is 1, not 2 — rollback undid
    // the first execution's state before the re-execution.
    for r in 1..4 {
        let v = cluster.replica(ReplicaId(r)).kv().get(b"k").expect("key exists");
        assert_eq!(v, &1u64.to_le_bytes().to_vec(), "replica {r}: rollback must undo state");
    }
    // And the re-proposal went through a fresh pre-prepare in view 1.
    let survivor = cluster.replica(ReplicaId(1));
    let pp = survivor.ledger().pp_at(SeqNum(1)).expect("re-proposed pre-prepare");
    assert!(pp.view().0 >= 1, "seq 1 must be governed by the new view's pre-prepare");
    cluster.assert_ledgers_consistent();
}

#[test]
fn rolled_back_governance_tx_reexecutes_identically() {
    // A governance transaction mutates replica-local governance state
    // *during* execution (the proposal book), so rollback must restore
    // that too — otherwise re-execution in the new view collides with its
    // own earlier side effects (duplicate proposal) and produces a
    // different result than the rolled-back run, breaking both ledger
    // byte-identity and audit replay.
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let gt = cluster.replica(ReplicaId(0)).gt_hash();

    for r in 0..4 {
        cluster.set_fault(ReplicaId(r), Fault::DropCommits);
    }
    // Member 0 proposes a *valid* next configuration (number + 1, one
    // endorsed replica added) so the first execution genuinely mutates
    // the proposal book (outcome: Recorded, ok = true).
    let mut next = spec.genesis.clone();
    next.number = spec.genesis.number + 1;
    let member_kp = KeyPair::from_label("member-4");
    let replica_kp = KeyPair::from_label("replica-4");
    next.members.push(MemberDesc { id: MemberId(4), key: member_kp.public() });
    let payload = ReplicaDesc::endorsement_payload(ReplicaId(4), &replica_kp.public());
    next.replicas.push(ReplicaDesc {
        id: ReplicaId(4),
        key: replica_kp.public(),
        operator: MemberId(4),
        endorsement: member_kp.sign(&payload),
    });
    let propose = SignedRequest::sign(
        Request {
            action: RequestAction::Governance(GovAction::Propose {
                proposal_id: 1,
                new_config: next,
            }),
            client: ClientId(0),
            gt_hash: gt,
            min_index: ia_ccf_types::LedgerIdx(0),
            req_id: 1,
        },
        &spec.member_keys[0],
    );
    cluster.submit_raw(ClientId(0), propose);
    for _ in 0..5 {
        cluster.round();
    }
    for r in 0..4 {
        let replica = cluster.replica(ReplicaId(r));
        assert_eq!(replica.prepared_up_to(), SeqNum(1), "replica {r} must prepare");
        assert_eq!(replica.committed_up_to(), SeqNum(0), "replica {r} must not commit");
    }
    let before = tx_entries(&cluster, ReplicaId(1));
    assert_eq!(before.len(), 1, "the governance tx must be executed (ledgered)");
    match LedgerEntry::from_bytes(&before[0]).unwrap() {
        LedgerEntry::Tx(tx) => assert!(tx.result.ok, "the propose must have been recorded"),
        other => panic!("expected tx entry, got {other:?}"),
    }

    cluster.crash(ReplicaId(0));
    for r in 1..4 {
        cluster.set_fault(ReplicaId(r), Fault::None);
    }
    assert!(
        cluster.run_until(400, |c| c.min_committed() >= SeqNum(1)),
        "governance batch must recommit in the new view"
    );
    for r in 1..4 {
        let after = tx_entries(&cluster, ReplicaId(r));
        assert_eq!(
            after, before,
            "replica {r}: re-executed governance entry must be byte-identical \
             (a result mismatch means governance state was not rolled back)"
        );
    }
    cluster.assert_ledgers_consistent();
}

#[test]
fn sharded_batch_rolls_back_and_reexecutes_identically() {
    // Rollback under sharding and pooled execution: a multi-transaction
    // SmallBank batch is executed through the parallel path (conflict-free
    // groups striped over the worker pool + ordered write-set merge across
    // 8 shards), prepared everywhere, committed nowhere — with the
    // admission stage's signature verification overlapping execution on
    // the pool. The view change must roll *every shard* back via the
    // `BatchMark` and the new view's re-execution must be byte-identical —
    // and identical to a fully serial (1 shard, 1 pool thread) cluster
    // driven through the exact same schedule, crash included. The pool
    // dimension sweeps pool = shards and pool < shards.
    let run = |shards: usize, pool: usize| -> (Vec<Vec<u8>>, Vec<[u8; 32]>) {
        let params = ProtocolParams {
            view_timeout_ticks: 15,
            execution_shards: shards,
            pool_threads: pool,
            ..ProtocolParams::default()
        };
        let spec = ClusterSpec::new(4, 1, params);
        let mut cluster = DetCluster::new(&spec, Arc::new(ia_ccf_smallbank::SmallBankApp));
        let mut seed_kv = ia_ccf::kv::KvStore::new();
        ia_ccf_smallbank::populate(&mut seed_kv, 8, 1_000);
        let snapshot = seed_kv.checkpoint();
        for r in cluster.replicas.values_mut() {
            r.inner.prime_kv(&snapshot);
        }
        let client = spec.clients[0].0;

        for r in 0..4 {
            cluster.set_fault(ReplicaId(r), Fault::DropCommits);
        }
        // One batch, six transactions: two conflicting transfers (0→1,
        // 1→2 share account 1 — same group, ordered), independent ops on
        // other accounts (parallel groups), and an overdraft that fails.
        let amount = |v: i64| v.to_le_bytes();
        let acct = |a: u64| a.to_le_bytes();
        let ops: Vec<(ia_ccf_types::ProcId, Vec<u8>)> = vec![
            (ia_ccf_smallbank::TRANSFER, [acct(0), acct(1), amount(100)].concat()),
            (ia_ccf_smallbank::TRANSFER, [acct(1), acct(2), amount(50)].concat()),
            (ia_ccf_smallbank::DEPOSIT, [acct(3), amount(250)].concat()),
            (ia_ccf_smallbank::WITHDRAW, [acct(4), amount(40)].concat()),
            (ia_ccf_smallbank::BALANCE, acct(5).to_vec()),
            (ia_ccf_smallbank::TRANSFER, [acct(6), acct(7), amount(9_999)].concat()),
        ];
        for (proc, args) in ops {
            cluster.submit(client, proc, args);
        }
        for _ in 0..5 {
            cluster.round();
        }
        for r in 0..4 {
            let replica = cluster.replica(ReplicaId(r));
            assert_eq!(replica.prepared_up_to(), SeqNum(1), "replica {r} must prepare");
            assert_eq!(replica.committed_up_to(), SeqNum(0), "replica {r} must not commit");
        }
        let before = tx_entries(&cluster, ReplicaId(1));
        assert_eq!(before.len(), 6, "all six txs must be executed (ledgered)");

        cluster.crash(ReplicaId(0));
        for r in 1..4 {
            cluster.set_fault(ReplicaId(r), Fault::None);
        }
        assert!(
            cluster.run_until(400, |c| c.min_committed() >= SeqNum(1)),
            "{shards} shards: batch must recommit in the new view"
        );
        for r in 1..4 {
            let after = tx_entries(&cluster, ReplicaId(r));
            assert_eq!(
                after, before,
                "{shards} shards, replica {r}: re-execution must be byte-identical"
            );
        }
        // Exactly-once: the deposit landed once, not twice — rollback
        // restored the shard holding account 3 before re-execution.
        for r in 1..4 {
            let kv = cluster.replica(ReplicaId(r)).kv();
            let b = ia_ccf_smallbank::Balances::from_bytes(
                kv.get(&ia_ccf_smallbank::account_key(3)).expect("account 3"),
            );
            assert_eq!(b.savings, 1_250, "replica {r}: deposit must apply exactly once");
        }
        cluster.assert_ledgers_consistent();
        (
            tx_entries(&cluster, ReplicaId(2)),
            (1..4)
                .map(|r| *cluster.replica(ReplicaId(r)).kv().digest().as_bytes())
                .collect(),
        )
    };

    let serial = run(1, 1);
    for (shards, pool) in [(8usize, 8usize), (8, 2)] {
        let parallel = run(shards, pool);
        assert_eq!(
            parallel, serial,
            "({shards} shards, {pool} pool threads) rollback/re-execution diverged from serial"
        );
    }
}

#[test]
fn view_change_evicts_cached_receipt_artifacts() {
    // Cache invalidation contract of the emission-stage receipt cache: a
    // *committed* governance batch populates the certificate cache, the
    // frozen-paths view and the governance chain. With pipeline depth P,
    // a view change whose last-prepared batch is `s` resets to `s − P` —
    // so a batch that committed above the reset point is rolled back
    // (and re-proposed byte-identically). Every cached artifact of its
    // view-0 incarnation must be evicted: the re-executed batch in the
    // new view must produce a *fresh* certificate (new view, new nonces)
    // that is byte-identical to an uncached assembly, and the governance
    // chain must carry the new-view receipt, not the stale one.
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let p = spec.genesis.pipeline_depth as u64;
    assert!(p >= 2, "scenario needs the committed batch above the reset point");
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let gt = cluster.replica(ReplicaId(0)).gt_hash();
    let client = spec.clients[0].0;

    // Batch 1: a recorded governance proposal; let it COMMIT everywhere,
    // which builds its governance receipt and caches its certificate.
    let mut next = spec.genesis.clone();
    next.number = spec.genesis.number + 1;
    let propose = SignedRequest::sign(
        Request {
            action: RequestAction::Governance(GovAction::Propose {
                proposal_id: 1,
                new_config: next,
            }),
            client: ClientId(0),
            gt_hash: gt,
            min_index: ia_ccf_types::LedgerIdx(0),
            req_id: 1,
        },
        &spec.member_keys[0],
    );
    cluster.submit_raw(ClientId(0), propose);
    assert!(
        cluster.run_until(50, |c| c.min_committed() >= SeqNum(1)),
        "governance batch must commit in view 0"
    );
    for _ in 0..3 {
        cluster.round(); // let deferred certificates (primary nonce) finish
    }
    for r in 0..4 {
        let replica = cluster.replica(ReplicaId(r));
        assert!(
            replica.has_cached_certificate(SeqNum(1), ia_ccf_types::View(0)),
            "replica {r}: committing the governance batch must cache its certificate"
        );
        assert_eq!(replica.gov_chain().len(), 1, "replica {r}: one governance link");
        assert_eq!(replica.gov_chain()[0].receipt().view(), ia_ccf_types::View(0));
    }
    let before = tx_entries(&cluster, ReplicaId(1));
    assert_eq!(before.len(), 1);

    // Batch 2: executed and prepared everywhere, committed nowhere.
    freeze_one_batch_at(&mut cluster, client, SeqNum(2));

    // View change: last prepared is 2, reset point is 2 − P = 0 — batch 1
    // (committed, certificate cached) rolls back too.
    cluster.crash(ReplicaId(0));
    for r in 1..4 {
        cluster.set_fault(ReplicaId(r), Fault::None);
    }
    assert!(
        cluster.run_until(400, |c| c.min_committed() >= SeqNum(2)),
        "both batches must recommit in the new view"
    );

    for r in 1..4 {
        let id = ReplicaId(r);
        let new_view = cluster.replica(id).view();
        assert!(new_view.0 >= 1, "replica {r} stuck in view 0");

        // Stale artifacts evicted: no certificate survives for the view-0
        // incarnation of the rolled-back batch.
        assert!(
            !cluster.replica(id).has_cached_certificate(SeqNum(1), ia_ccf_types::View(0)),
            "replica {r}: stale view-0 certificate must be evicted"
        );
        // The governance chain was rebuilt with the new view's receipt.
        let chain = cluster.replica(id).gov_chain();
        assert_eq!(chain.len(), 1, "replica {r}: exactly one (fresh) governance link");
        assert_eq!(
            chain[0].receipt().view(),
            new_view,
            "replica {r}: chain must carry the re-executed batch's new-view receipt"
        );
        // And it verifies from genesis — the fresh certificate is real.
        let rebuilt = GovernanceChain { links: chain.to_vec() };
        assert!(rebuilt.verify(&spec.genesis).is_ok(), "replica {r}: fresh chain verifies");

        // The cached certificate is byte-identical to an uncached
        // assembly from the message store.
        let replica = &mut cluster.replicas.get_mut(&id).expect("replica").inner;
        let seq_view = replica.prepared_view_of(SeqNum(1)).expect("batch 1 prepared");
        let uncached = replica.build_batch_certificate(SeqNum(1), seq_view);
        let cached = replica.batch_certificate(SeqNum(1), seq_view);
        assert_eq!(cached, uncached, "replica {r}: cached certificate must equal uncached");
        assert!(
            replica.has_cached_certificate(SeqNum(1), seq_view),
            "replica {r}: new-view certificate must now be cached"
        );
        // Repeated requests are cache hits, not re-assemblies.
        let builds_before = replica.receipt_cache_stats().cert_builds;
        let again = replica.batch_certificate(SeqNum(1), seq_view);
        assert_eq!(again, cached);
        assert_eq!(
            replica.receipt_cache_stats().cert_builds,
            builds_before,
            "replica {r}: second request must not re-assemble"
        );
    }

    // Ledger byte-identity: the re-executed ⟨t, i, o⟩ entries are the
    // rolled-back ones, bit for bit.
    for r in 1..4 {
        let after = tx_entries(&cluster, ReplicaId(r));
        assert_eq!(&after[..1], &before[..], "replica {r}: gov entry must be byte-identical");
    }
    cluster.assert_ledgers_consistent();
}

/// Like `freeze_one_batch`, but asserting the frozen batch lands at
/// `expect_seq` (for scenarios with earlier committed batches).
fn freeze_one_batch_at(cluster: &mut DetCluster, client: ia_ccf_types::ClientId, expect_seq: SeqNum) {
    for r in 0..4 {
        cluster.set_fault(ReplicaId(r), Fault::DropCommits);
    }
    cluster.submit(client, CounterApp::INCR, b"k".to_vec());
    for _ in 0..5 {
        cluster.round();
    }
    for r in 0..4 {
        let replica = cluster.replica(ReplicaId(r));
        assert_eq!(replica.prepared_up_to(), expect_seq, "replica {r} must prepare");
        assert_eq!(
            replica.committed_up_to(),
            SeqNum(expect_seq.0 - 1),
            "replica {r} must not commit the frozen batch"
        );
    }
}

#[test]
fn view_change_mid_ledger_sync_does_not_corrupt_partial_state() {
    // Paged state transfer interrupted by a view change (and new
    // commits): a recovering replica has applied a *prefix* of the
    // server's ledger — including an executed-but-uncommitted batch —
    // when a view change rolls that batch back cluster-side and
    // re-proposes it in the new view. The requester must notice that the
    // server's stream no longer extends its applied tail, roll its own
    // uncommitted tail back (Lemma 1), resume from the committed
    // frontier, and finish with a ledger byte-identical to the
    // cluster's — partially-applied state is never left corrupt.
    let params = ProtocolParams {
        view_timeout_ticks: 15,
        // One batch segment per page: the interruption lands between
        // pages, not inside one.
        sync_page_bytes: 1,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(4, 1, params.clone());
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;

    // A committed prefix, then *two* frozen (executed + prepared, never
    // committed) batches at seqs 3 and 4 — the interruption must land
    // after the first frozen batch crossed the wire but before the
    // stream ends, so the transfer is genuinely mid-flight.
    for _ in 0..2 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until(100, |c| c.min_committed() >= SeqNum(2)));
    for r in 0..4 {
        cluster.set_fault(ReplicaId(r), Fault::DropCommits);
    }
    for _ in 0..2 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        for _ in 0..5 {
            cluster.round();
        }
    }
    for r in 0..4 {
        let replica = cluster.replica(ReplicaId(r));
        assert_eq!(replica.prepared_up_to(), SeqNum(4), "replica {r} must prepare both");
        assert_eq!(replica.committed_up_to(), SeqNum(2), "replica {r} must commit neither");
    }

    // The recovering replica is a second instance of replica 3's
    // identity held *outside* the cluster and pumped by hand, so the
    // transfer can be interrupted at an exact page boundary (inside the
    // simulator a sync resolves within one round).
    let mut fresh = spec.build_replica(3, Arc::new(CounterApp));
    let server = ReplicaId(1);
    // Answer the sync's opening tip query from every peer; the page
    // request that follows (to `server`) seeds the hand-pumped queue.
    let mut requests: Vec<ia_ccf_types::ProtocolMsg> = Vec::new();
    for out in fresh.begin_ledger_sync(server) {
        let ia_ccf::core::Output::SendReplica(peer, msg) = out else { continue };
        let replies = cluster
            .replicas
            .get_mut(&peer)
            .expect("peer")
            .inner
            .handle(ia_ccf::core::Input::Message {
                from: ia_ccf::core::NodeId::Replica(fresh.id()),
                msg,
            });
        for reply in replies {
            if let ia_ccf::core::Output::SendReplica(to, msg) = reply {
                if to != fresh.id() {
                    continue;
                }
                let outs = fresh.handle(ia_ccf::core::Input::Message {
                    from: ia_ccf::core::NodeId::Replica(peer),
                    msg,
                });
                requests.extend(outs.into_iter().filter_map(|o| match o {
                    ia_ccf::core::Output::SendReplica(to, msg) if to == server => Some(msg),
                    _ => None,
                }));
            }
        }
    }

    // Pump exactly three pages (batches 1–3): the first frozen batch has
    // crossed the wire in its view-0 form — applied or held in the
    // requester's segment buffer — and the `done` page for batch 4 is
    // never delivered: the transfer stops mid-flight.
    for _ in 0..3 {
        let msg = requests.pop().expect("page request in flight");
        let outs = cluster
            .replicas
            .get_mut(&server)
            .expect("server")
            .inner
            .handle(ia_ccf::core::Input::Message {
                from: ia_ccf::core::NodeId::Replica(fresh.id()),
                msg,
            });
        for out in outs {
            if let ia_ccf::core::Output::SendReplica(to, msg) = out {
                if to != fresh.id() {
                    continue;
                }
                let outs = fresh.handle(ia_ccf::core::Input::Message {
                    from: ia_ccf::core::NodeId::Replica(server),
                    msg,
                });
                requests.extend(outs.into_iter().filter_map(|o| match o {
                    ia_ccf::core::Output::SendReplica(to, msg) if to == server => Some(msg),
                    _ => None,
                }));
            }
        }
    }
    assert!(!fresh.sync_report().complete, "transfer must still be mid-flight");
    assert!(fresh.sync_report().pages >= 3, "three pages delivered");
    // Batches 1 and 2 are applied; the view-0 frozen batch 3 crossed the
    // wire and sits withheld in the segment buffer (its transaction run
    // could still grow), to be applied — and then found divergent — when
    // the stream resumes.
    assert_eq!(fresh.prepared_up_to(), SeqNum(2), "committed prefix applied");

    // Mid-transfer interruption: view change rolls the frozen batch back
    // cluster-side, re-proposes it in view ≥ 1, and new commits land.
    cluster.crash(ReplicaId(0));
    for r in 1..4 {
        cluster.set_fault(ReplicaId(r), Fault::None);
    }
    assert!(
        cluster.run_until(400, |c| c.min_committed() >= SeqNum(4)),
        "frozen batches must recommit in the new view"
    );
    for _ in 0..2 {
        cluster.submit(client, CounterApp::INCR, b"post-vc".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until(400, |c| c.min_committed() >= SeqNum(6)));

    // Resume the transfer: the very next page diverges from the applied
    // view-0 tail; the requester rolls back to its committed frontier
    // and replays the view change + re-proposed batches to completion.
    let mut hops = 0;
    while !fresh.sync_report().complete {
        hops += 1;
        assert!(hops < 100, "resumed sync did not converge: {:?}", fresh.sync_report());
        let msg = requests.pop().expect("page request in flight");
        let outs = cluster
            .replicas
            .get_mut(&server)
            .expect("server")
            .inner
            .handle(ia_ccf::core::Input::Message {
                from: ia_ccf::core::NodeId::Replica(fresh.id()),
                msg,
            });
        for out in outs {
            if let ia_ccf::core::Output::SendReplica(to, msg) = out {
                if to != fresh.id() {
                    continue;
                }
                let outs = fresh.handle(ia_ccf::core::Input::Message {
                    from: ia_ccf::core::NodeId::Replica(server),
                    msg,
                });
                requests.extend(outs.into_iter().filter_map(|o| match o {
                    ia_ccf::core::Output::SendReplica(to, msg) if to == server => Some(msg),
                    _ => None,
                }));
            }
        }
    }
    let report = fresh.sync_report();
    assert!(
        report.tail_rollbacks >= 1,
        "divergence must be healed by a tail rollback, not ignored: {report:?}"
    );
    assert_eq!(report.failovers, 0, "an honest server must not be abandoned: {report:?}");

    // The recovered ledger is byte-identical to the cluster's — view
    // change entries, re-proposed batches, post-view-change commits and
    // all — and re-execution reproduced the KV state.
    let survivor = cluster.replica(server);
    assert_eq!(fresh.ledger().len(), survivor.ledger().len());
    for i in 0..survivor.ledger().len() {
        use ia_ccf_types::{LedgerIdx, Wire};
        assert_eq!(
            fresh.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            survivor.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            "ledger divergence at entry {i}"
        );
    }
    assert_eq!(fresh.kv().digest(), survivor.kv().digest());
    assert!(fresh.view().0 >= 1, "the replayed view change must advance the view");
    cluster.assert_ledgers_consistent();
}

#[test]
fn post_rollback_ledger_audits_clean() {
    // Same rollback scenario, then more traffic; a survivor's ledger —
    // which contains the view change and the re-executed batch — must
    // audit clean against every receipt the clients collected.
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;

    freeze_one_batch(&mut cluster, client);
    cluster.crash(ReplicaId(0));
    for r in 1..4 {
        cluster.set_fault(ReplicaId(r), Fault::None);
    }
    assert!(cluster.run_until(400, |c| c.min_committed() >= SeqNum(1)));

    for _ in 0..4 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(5, 400), "finished {}", cluster.finished.len());

    let receipts: Vec<StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts"),
        })
        .collect();
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(2)), SeqNum(0));
    assert!(
        package
            .entries
            .iter()
            .any(|e| matches!(e, LedgerEntry::ViewChangeSet { .. })),
        "ledger must contain the view change"
    );
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    assert!(matches!(outcome, AuditOutcome::Clean), "{:?}", outcome.upom());
}
