//! `serve_ledger_fetch` vs the frame size limit.
//!
//! The PR 2 behavior under test: `serve_ledger_fetch` answers a
//! `FetchLedger` with the whole remaining ledger in **one**
//! `FetchLedgerResponse`. Past [`ia_ccf_net::frame::MAX_FRAME`] (64 MiB)
//! every receiver would reject the frame as `Oversized` and kill the
//! connection, so the frame encoder asserts on the *sender* — an
//! over-large response must fail loudly at the source instead of
//! livelocking as silent reconnect churn. These tests pin both sides of
//! the limit: an oversized response panics in `encode_msg`, and a
//! response just under the limit round-trips and decodes back into the
//! ledger entries a recovering replica would apply. This is the
//! regression fence in front of the ROADMAP's paged FetchLedger
//! (continuation tokens), which will replace the single-shot reply.

use std::sync::Arc;

use ia_ccf::core::app::{App, AppError};
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams};
use ia_ccf_kv::{Key, KvAccess};
use ia_ccf_net::frame;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, LedgerEntry, ProcId, ProtocolMsg, ReplicaId, SeqNum, Wire,
};

/// An app whose outputs are `size`-byte blobs — the cheapest way to grow
/// a ledger toward the frame limit (outputs are embedded in `⟨t, i, o⟩`
/// entries). Writes nothing: empty footprint.
struct BlobApp {
    size: usize,
}

impl App for BlobApp {
    fn execute(
        &self,
        _kv: &mut dyn KvAccess,
        _proc: ProcId,
        _args: &[u8],
        _client: ClientId,
    ) -> Result<Vec<u8>, AppError> {
        Ok(vec![0xAB; self.size])
    }

    fn key_hints(&self, _proc: ProcId, _args: &[u8], _client: ClientId) -> Option<Vec<Key>> {
        Some(Vec::new())
    }
}

const BLOB: usize = 4 * 1024 * 1024;

/// Grow a single-replica cluster's ledger to roughly `txs * BLOB` bytes
/// and return the cluster (replica 0 holds the ledger).
fn grown_cluster(txs: usize) -> (ClusterSpec, DetCluster) {
    let params = ProtocolParams { checkpoints_enabled: false, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(1, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(BlobApp { size: BLOB }));
    let client = spec.clients[0].0;
    for _ in 0..txs {
        cluster.submit(client, ProcId(1), Vec::new());
        cluster.round();
    }
    assert!(
        cluster.run_until_finished(txs, 200),
        "finished {}/{txs}",
        cluster.finished.len()
    );
    (spec, cluster)
}

/// Ask replica 0 for its ledger from `from_seq` and return the response
/// message it would send.
fn fetch_response(cluster: &mut DetCluster, from_seq: u64) -> ProtocolMsg {
    let replica = cluster.replicas.get_mut(&ReplicaId(0)).expect("replica 0");
    let outs = replica.inner.handle(Input::Message {
        from: NodeId::Replica(ReplicaId(9)),
        msg: ProtocolMsg::FetchLedger { from_seq: SeqNum(from_seq) },
    });
    outs.into_iter()
        .find_map(|o| match o {
            Output::SendReplica(_, msg @ ProtocolMsg::FetchLedgerResponse { .. }) => Some(msg),
            _ => None,
        })
        .expect("serve_ledger_fetch must answer")
}

#[test]
#[should_panic(expected = "message over MAX_FRAME")]
fn oversized_ledger_fetch_response_fails_loudly_on_the_sender() {
    // 18 × 4 MiB of outputs ≈ 72 MiB of ledger — past MAX_FRAME. The
    // response assembles fine as a message; the frame encoder must refuse
    // to put it on the wire.
    let (_spec, mut cluster) = grown_cluster(18);
    let msg = fetch_response(&mut cluster, 1);
    let mut scratch = Vec::new();
    let _ = frame::encode_msg(&msg, &mut scratch);
}

#[test]
fn ledger_fetch_just_under_the_limit_roundtrips_for_recovery() {
    // 12 × 4 MiB ≈ 48 MiB — under MAX_FRAME. The single-shot response
    // must encode, transit as one frame, and decode back into exactly the
    // ledger entries a recovering replica would apply.
    let (_spec, mut cluster) = grown_cluster(12);
    let msg = fetch_response(&mut cluster, 1);
    let sent_entries = match &msg {
        ProtocolMsg::FetchLedgerResponse { entries } => entries.clone(),
        other => panic!("unexpected message {other:?}"),
    };
    assert!(!sent_entries.is_empty());

    let mut scratch = Vec::new();
    let framed = frame::encode_msg(&msg, &mut scratch).to_vec();
    assert!(
        framed.len() as u64 <= frame::MAX_FRAME as u64 + frame::HEADER_LEN as u64,
        "frame unexpectedly oversized: {} bytes",
        framed.len()
    );

    // Receiver side: exact-decode the frame, then the message, then every
    // ledger entry — byte-identical to what the sender's ledger holds.
    let payload = frame::decode_exact(&framed).expect("one whole frame");
    let decoded = ProtocolMsg::from_bytes(payload).expect("message decodes");
    let ProtocolMsg::FetchLedgerResponse { entries } = decoded else {
        panic!("wrong message kind after roundtrip");
    };
    assert_eq!(entries, sent_entries, "entries must survive the frame roundtrip");
    let parsed: Vec<LedgerEntry> = entries
        .iter()
        .map(|e| LedgerEntry::from_bytes(e).expect("entry decodes"))
        .collect();
    assert!(
        parsed.iter().any(|e| matches!(e, LedgerEntry::Tx(_))),
        "response must carry the transaction entries"
    );
    // The served range covers everything from the first batch's ledger
    // position to the tip — the whole ledger minus the genesis entry.
    let ledger_len = cluster.replica(ReplicaId(0)).ledger().len();
    assert_eq!(entries.len() as u64, ledger_len - 1);
}
