//! Paged ledger fetch vs the frame size limit.
//!
//! The seed served a `FetchLedger` with the *entire* remaining ledger in
//! one `FetchLedgerResponse`; past [`ia_ccf_net::frame::MAX_FRAME`]
//! (64 MiB) the frame encoder asserted on the sender, so a recovering
//! replica simply could not sync a large ledger (the old version of this
//! file pinned that cliff as a known limitation). The paged `FetchLedgerPage`
//! protocol retires it: the server cuts bounded pages at batch-segment
//! boundaries, clamped to [`PAGE_CEILING_BYTES`] (well under `MAX_FRAME`),
//! and the requester resumes with the returned continuation token. These
//! tests pin both sides of the new contract:
//!
//! * a ledger whose remaining suffix exceeds `MAX_FRAME` transfers
//!   completely — every page frames, the concatenation is byte-identical
//!   to the monolithic oracle, and a recovering replica replays it to a
//!   byte-identical ledger (no panic anywhere);
//! * a suffix under the page ceiling still arrives as a **single page**
//!   (the fast path: one round trip, exactly the seed's useful behavior);
//! * pages respect the requester's budget up to the one-segment
//!   progress-guarantee overshoot.

use std::sync::Arc;

use ia_ccf::core::app::{App, AppError};
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams, Replica};
use ia_ccf_kv::{Key, KvAccess};
use ia_ccf_net::frame;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::messages::PAGE_CEILING_BYTES;
use ia_ccf_types::{
    ClientId, KeyPair, LedgerEntry, LedgerIdx, ProcId, ProtocolMsg, ReplicaId, SeqNum, Wire,
};

/// An app whose outputs are `size`-byte blobs — the cheapest way to grow
/// a ledger toward the frame limit (outputs are embedded in `⟨t, i, o⟩`
/// entries). Writes nothing: empty footprint.
struct BlobApp {
    size: usize,
}

impl App for BlobApp {
    fn execute(
        &self,
        _kv: &mut dyn KvAccess,
        _proc: ProcId,
        _args: &[u8],
        _client: ClientId,
    ) -> Result<Vec<u8>, AppError> {
        Ok(vec![0xAB; self.size])
    }

    fn key_hints(&self, _proc: ProcId, _args: &[u8], _client: ClientId) -> Option<Vec<Key>> {
        Some(Vec::new())
    }
}

const BLOB: usize = 4 * 1024 * 1024;

/// Grow a single-replica cluster's ledger to roughly `txs * BLOB` bytes
/// and return the cluster (replica 0 holds the ledger).
fn grown_cluster(txs: usize) -> (ClusterSpec, DetCluster) {
    let params = ProtocolParams { checkpoints_enabled: false, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(1, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(BlobApp { size: BLOB }));
    let client = spec.clients[0].0;
    for _ in 0..txs {
        cluster.submit(client, ProcId(1), Vec::new());
        cluster.round();
    }
    assert!(
        cluster.run_until_finished(txs, 200),
        "finished {}/{txs}",
        cluster.finished.len()
    );
    (spec, cluster)
}

/// Ask replica 0 for one ledger page and return it.
fn fetch_page(
    cluster: &mut DetCluster,
    from_seq: u64,
    max_bytes: u64,
) -> (Vec<Vec<u8>>, SeqNum, bool) {
    let replica = cluster.replicas.get_mut(&ReplicaId(0)).expect("replica 0");
    let outs = replica.inner.handle(Input::Message {
        from: NodeId::Replica(ReplicaId(9)),
        msg: ProtocolMsg::FetchLedgerPage { from_seq: SeqNum(from_seq), max_bytes },
    });
    outs.into_iter()
        .find_map(|o| match o {
            Output::SendReplica(
                _,
                ProtocolMsg::FetchLedgerPageResponse { entries, next_seq, done },
            ) => Some((entries, next_seq, done)),
            _ => None,
        })
        .expect("serve_ledger_page must answer")
}

/// Drive the paged protocol to completion, asserting every page frames
/// under `MAX_FRAME` and tokens strictly advance; returns the
/// concatenated entries and the page count.
fn fetch_all_pages(
    cluster: &mut DetCluster,
    from_seq: u64,
    max_bytes: u64,
) -> (Vec<Vec<u8>>, usize) {
    let mut token = from_seq;
    let mut all = Vec::new();
    let mut pages = 0;
    let mut scratch = Vec::new();
    loop {
        let (entries, next_seq, done) = fetch_page(cluster, token, max_bytes);
        let msg = ProtocolMsg::FetchLedgerPageResponse {
            entries: entries.clone(),
            next_seq,
            done,
        };
        // The retired cliff: in the seed this encode panicked past
        // MAX_FRAME; a page response must always frame.
        let framed = frame::encode_msg(&msg, &mut scratch);
        assert!(
            framed.len() as u64 <= frame::MAX_FRAME as u64 + frame::HEADER_LEN as u64,
            "page frame oversized: {} bytes",
            framed.len()
        );
        pages += 1;
        all.extend(entries);
        if done {
            return (all, pages);
        }
        assert!(next_seq.0 > token, "continuation must advance: {next_seq} after {token}");
        token = next_seq.0;
    }
}

#[test]
fn oversized_ledger_suffix_transfers_fully_via_pages() {
    // 18 × 4 MiB of outputs ≈ 72 MiB of ledger — past MAX_FRAME, the
    // seed's sender-side panic territory. The paged protocol must move
    // the whole suffix in several bounded frames, byte-identical to the
    // monolithic oracle.
    let (spec, mut cluster) = grown_cluster(18);
    let (paged, pages) = fetch_all_pages(&mut cluster, 1, u64::MAX);
    assert!(pages >= 2, "a 72 MiB suffix cannot be one page (got {pages})");

    let oracle = cluster.replica(ReplicaId(0)).ledger_fetch_oracle(SeqNum(1));
    assert_eq!(paged, oracle, "concatenated pages must equal the monolithic response");
    let ledger_len = cluster.replica(ReplicaId(0)).ledger().len();
    assert_eq!(paged.len() as u64, ledger_len - 1, "everything after genesis is served");

    // And the point of it all: a recovering replica ingests the pages,
    // replays them with full verification, and ends byte-identical.
    let params = ProtocolParams { checkpoints_enabled: false, ..ProtocolParams::default() };
    let mut fresh = Replica::new(
        ReplicaId(9),
        KeyPair::from_label("recovering"),
        spec.genesis.clone(),
        Arc::new(BlobApp { size: BLOB }),
        params,
        spec.client_keys(),
    )
    .expect("fresh replica");
    let mut inbox: Vec<ProtocolMsg> = fresh
        .begin_ledger_sync(ReplicaId(0))
        .into_iter()
        .filter_map(|o| match o {
            Output::SendReplica(ReplicaId(0), msg) => Some(msg),
            _ => None,
        })
        .collect();
    let mut hops = 0;
    while !fresh.sync_report().complete {
        hops += 1;
        assert!(hops < 100, "sync did not converge");
        let msg = inbox.pop().expect("request in flight");
        let server = cluster.replicas.get_mut(&ReplicaId(0)).expect("server");
        let responses = server.inner.handle(Input::Message {
            from: NodeId::Replica(ReplicaId(9)),
            msg,
        });
        for out in responses {
            if let Output::SendReplica(ReplicaId(9), msg) = out {
                let outs = fresh.handle(Input::Message {
                    from: NodeId::Replica(ReplicaId(0)),
                    msg,
                });
                inbox.extend(outs.into_iter().filter_map(|o| match o {
                    Output::SendReplica(ReplicaId(0), msg) => Some(msg),
                    _ => None,
                }));
            }
        }
    }
    let report = fresh.sync_report();
    assert!(report.pages >= 2, "recovery must have paged ({} pages)", report.pages);
    assert_eq!(report.failovers, 0, "honest server: no failover");
    let server = cluster.replica(ReplicaId(0));
    assert_eq!(fresh.ledger().len(), server.ledger().len());
    for i in 0..server.ledger().len() {
        assert_eq!(
            fresh.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            server.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            "ledger divergence at entry {i}"
        );
    }
    assert_eq!(fresh.kv().digest(), server.kv().digest(), "replayed KV state matches");
}

#[test]
fn suffix_under_the_ceiling_is_a_single_page_fast_path() {
    // 12 × 4 MiB ≈ 48 MiB — under the page ceiling. One round trip moves
    // everything (the seed's useful single-shot behavior, now bounded),
    // and the frame round-trips into exactly the ledger entries a
    // recovering replica would apply.
    let (_spec, mut cluster) = grown_cluster(12);
    let (entries, next_seq, done) = fetch_page(&mut cluster, 1, PAGE_CEILING_BYTES as u64);
    assert!(done, "a 48 MiB suffix must be one page");
    assert!(!entries.is_empty());

    let msg = ProtocolMsg::FetchLedgerPageResponse {
        entries: entries.clone(),
        next_seq,
        done,
    };
    let mut scratch = Vec::new();
    let framed = frame::encode_msg(&msg, &mut scratch).to_vec();
    assert!(
        framed.len() as u64 <= frame::MAX_FRAME as u64 + frame::HEADER_LEN as u64,
        "frame unexpectedly oversized: {} bytes",
        framed.len()
    );

    // Receiver side: exact-decode the frame, then the message, then every
    // ledger entry — byte-identical to what the sender's ledger holds.
    let payload = frame::decode_exact(&framed).expect("one whole frame");
    let decoded = ProtocolMsg::from_bytes(payload).expect("message decodes");
    let ProtocolMsg::FetchLedgerPageResponse { entries: received, done: true, .. } = decoded
    else {
        panic!("wrong message kind after roundtrip");
    };
    assert_eq!(received, entries, "entries must survive the frame roundtrip");
    let parsed: Vec<LedgerEntry> = received
        .iter()
        .map(|e| LedgerEntry::from_bytes(e).expect("entry decodes"))
        .collect();
    assert!(
        parsed.iter().any(|e| matches!(e, LedgerEntry::Tx(_))),
        "response must carry the transaction entries"
    );
    // The served range covers everything from the first batch to the tip
    // — the whole ledger minus the genesis entry.
    let ledger_len = cluster.replica(ReplicaId(0)).ledger().len();
    assert_eq!(received.len() as u64, ledger_len - 1);
}

#[test]
fn pages_respect_the_budget_up_to_one_segment() {
    // With a 5 MiB budget and ~4 MiB batch segments, each page carries
    // one or two segments: never an empty page, never more than budget +
    // one segment (the progress guarantee's only permitted overshoot).
    let (_spec, mut cluster) = grown_cluster(6);
    let budget = 5 * 1024 * 1024u64;
    let seg = (BLOB + 4096) as u64; // one blob entry + pp/evidence slack
    let mut token = 1;
    let mut pages = 0;
    loop {
        let (entries, next_seq, done) = fetch_page(&mut cluster, token, budget);
        let bytes: u64 = entries.iter().map(|e| e.len() as u64 + 4).sum();
        assert!(!entries.is_empty(), "every page makes progress");
        assert!(
            bytes <= budget + seg,
            "page of {bytes} bytes exceeds budget {budget} + one segment"
        );
        pages += 1;
        if done {
            break;
        }
        token = next_seq.0;
    }
    assert!(pages >= 3, "6 × 4 MiB at a 5 MiB budget must take several pages, got {pages}");
}
