//! Property-based end-to-end tests: for arbitrary fault-free workload
//! schedules, the cluster must converge with identical ledgers, all
//! receipts must verify, and a full audit must be clean. This is the
//! system-level counterpart of Appx. A Thm. 1 (linearizability) plus the
//! completeness direction of auditing (honest executions never blamed).

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, LedgerPackage, StoredReceipt};
use ia_ccf::core::app::CounterApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{ReplicaId, SeqNum};
use proptest::prelude::*;

/// One scheduled client action.
#[derive(Debug, Clone)]
enum Step {
    /// Submit an increment of one of 4 keys from one of 2 clients.
    Submit { client: u8, key: u8 },
    /// Advance the cluster a round.
    Round,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0u8..2, 0u8..4).prop_map(|(client, key)| Step::Submit { client, key }),
        2 => Just(Step::Round),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_schedules_converge_and_audit_clean(
        steps in proptest::collection::vec(step_strategy(), 5..40),
        checkpoint_interval in prop_oneof![Just(5u64), Just(10), Just(100)],
    ) {
        let spec = ClusterSpec::new(4, 2, ProtocolParams::default())
            .with_config(|c| c.checkpoint_interval = checkpoint_interval);
        let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
        let mut submitted = 0usize;
        let mut expected: [u64; 4] = [0; 4];

        for step in &steps {
            match step {
                Step::Submit { client, key } => {
                    let id = spec.clients[*client as usize].0;
                    cluster.submit(id, CounterApp::INCR, vec![b'k', *key]);
                    expected[*key as usize] += 1;
                    submitted += 1;
                }
                Step::Round => cluster.round(),
            }
        }
        prop_assert!(
            cluster.run_until_finished(submitted, 1_000),
            "only {}/{} finished", cluster.finished.len(), submitted
        );
        cluster.assert_ledgers_consistent();

        // Application state matches the schedule on every replica.
        for r in 0..4u32 {
            let kv = cluster.replica(ReplicaId(r)).kv();
            for key in 0..4u8 {
                let got = kv
                    .get(&[b'k', key])
                    .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                    .unwrap_or(0);
                prop_assert_eq!(got, expected[key as usize], "replica {} key {}", r, key);
            }
        }

        // Every receipt verifies and the transaction indices are unique
        // and strictly positive.
        let mut indices = Vec::new();
        for (_, tx) in &cluster.finished {
            let receipt = tx.receipt.as_ref().expect("receipts enabled");
            receipt.verify(&spec.genesis).expect("receipt verifies");
            indices.push(receipt.tx_index().unwrap().0);
        }
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), indices.len(), "indices must be unique");

        // Honest executions audit clean (completeness of accountability:
        // correct members are never blamed).
        let receipts: Vec<StoredReceipt> = cluster
            .finished
            .iter()
            .map(|(_, tx)| StoredReceipt {
                request: tx.request.clone(),
                receipt: tx.receipt.clone().unwrap(),
            })
            .collect();
        let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(0)), SeqNum(0));
        let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
        let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
        prop_assert!(matches!(outcome, AuditOutcome::Clean), "{:?}", outcome.upom());
    }
}
