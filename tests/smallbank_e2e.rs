//! SmallBank end-to-end on the deterministic cluster: conservation of
//! funds under the full workload mix, receipts for every transaction, and
//! a clean audit of the resulting ledger.

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, LedgerPackage, StoredReceipt};
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_smallbank::{account_key, populate, Balances, SmallBankApp, Workload};
use ia_ccf_types::{ReplicaId, SeqNum};

const ACCOUNTS: u64 = 40;
const INITIAL: i64 = 1_000;

fn primed_cluster(spec: &ClusterSpec) -> DetCluster {
    let mut cluster = DetCluster::new(spec, Arc::new(SmallBankApp));
    // Prime every replica identically before any batch executes.
    let mut seed = ia_ccf::kv::KvStore::new();
    populate(&mut seed, ACCOUNTS, INITIAL);
    let snapshot = seed.checkpoint();
    for r in cluster.replicas.values_mut() {
        r.inner.prime_kv(&snapshot);
    }
    cluster
}

#[test]
fn smallbank_conserves_funds_and_audits_clean() {
    let spec = ClusterSpec::new(4, 2, ProtocolParams::default());
    let mut cluster = primed_cluster(&spec);
    let mut workload = Workload::new(ACCOUNTS, 99);

    let total_tx = 120usize;
    for i in 0..total_tx {
        let op = workload.next_op();
        let client = spec.clients[i % 2].0;
        cluster.submit(client, op.proc, op.args);
        if i % 5 == 4 {
            cluster.round();
        }
    }
    assert!(
        cluster.run_until_finished(total_tx, 1_000),
        "finished {}/{total_tx}",
        cluster.finished.len()
    );
    cluster.assert_ledgers_consistent();

    // Deposits add money, withdrawals remove it; transfers and
    // amalgamates conserve. Recompute the expected total from outputs by
    // re-walking balances on one replica and comparing replicas pairwise.
    let sum_on = |r: ReplicaId| -> i64 {
        let kv = cluster.replica(r).kv();
        (0..ACCOUNTS)
            .map(|a| {
                let b = kv.get(&account_key(a)).map(|v| Balances::from_bytes(v)).unwrap_or_default();
                b.checking + b.savings
            })
            .sum()
    };
    let totals: Vec<i64> = (0..4).map(|r| sum_on(ReplicaId(r))).collect();
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "replica totals diverge: {totals:?}");

    // Every receipt verifies and the audit of the full ledger is clean.
    let receipts: Vec<StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts"),
        })
        .collect();
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(3)), SeqNum(0));
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(SmallBankApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    assert!(matches!(outcome, AuditOutcome::Clean), "{:?}", outcome.upom());
}

#[test]
fn failed_transactions_are_ordered_with_receipts() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = primed_cluster(&spec);
    let client = spec.clients[0].0;

    // A transfer that must fail (insufficient funds).
    let args =
        [0u64.to_le_bytes(), 1u64.to_le_bytes(), (INITIAL * 10).to_le_bytes()].concat();
    cluster.submit(client, ia_ccf_smallbank::TRANSFER, args);
    assert!(cluster.run_until_finished(1, 100));
    let (_, tx) = &cluster.finished[0];
    assert!(!tx.ok, "the transfer must fail");
    assert!(String::from_utf8_lossy(&tx.output).contains("insufficient"));
    // Even failed transactions get receipts — they are part of the agreed
    // history (and their rollback is part of what an audit replays).
    tx.receipt.as_ref().expect("failed txs still certified");
    // Balances unchanged everywhere.
    for r in 0..4 {
        let kv = cluster.replica(ReplicaId(r)).kv();
        let b = Balances::from_bytes(kv.get(&account_key(0)).expect("account"));
        assert_eq!(b.checking, INITIAL);
    }
}

#[test]
fn primary_failure_mid_workload_preserves_state() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let mut cluster = primed_cluster(&spec);
    let mut workload = Workload::new(ACCOUNTS, 7);
    let client = spec.clients[0].0;

    for _ in 0..10 {
        let op = workload.next_op();
        cluster.submit(client, op.proc, op.args);
        cluster.round();
    }
    assert!(cluster.run_until_finished(10, 300));

    cluster.crash(ReplicaId(0)); // primary of view 0
    for _ in 0..10 {
        let op = workload.next_op();
        cluster.submit(client, op.proc, op.args);
        cluster.round();
    }
    assert!(
        cluster.run_until_finished(20, 800),
        "survivors must make progress: {}",
        cluster.finished.len()
    );
    cluster.assert_ledgers_consistent();
    // All 20 receipts verified (the client re-verified them under the
    // configuration; views differ pre/post crash).
    let views: std::collections::BTreeSet<u64> = cluster
        .finished
        .iter()
        .map(|(_, t)| t.receipt.as_ref().unwrap().view().0)
        .collect();
    assert!(views.len() >= 2, "receipts span the view change: {views:?}");
}
