//! Property tests over the wire codec: every protocol message and ledger
//! entry round-trips, `encoded_len` is exact, the shared [`frame`] codec
//! round-trips and survives hostile input (truncated frames and oversized
//! length prefixes error — never panic, never over-allocate), and
//! decoding never panics on arbitrary bytes (hostile-input safety for the
//! TCP transport).

use ia_ccf_net::frame;
use proptest::prelude::*;

use ia_ccf_types::{
    BatchKind, ClientId, Commit, Digest, LedgerEntry, LedgerIdx, Nonce, NonceCommitment,
    PrePrepare, PrePrepareCore, Prepare, ProcId, ProtocolMsg, Reply, ReplicaBitmap, ReplicaId,
    Request, RequestAction, SeqNum, Signature, SignedRequest, TxLedgerEntry, TxResult, View, Wire,
};

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest::from_bytes)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    any::<[u8; 32]>().prop_map(|half| {
        let mut s = [0u8; 64];
        s[..32].copy_from_slice(&half);
        s[32..].copy_from_slice(&half);
        Signature(s)
    })
}

fn arb_kind() -> impl Strategy<Value = BatchKind> {
    prop_oneof![
        Just(BatchKind::Regular),
        Just(BatchKind::Checkpoint),
        (1u32..9).prop_map(|phase| BatchKind::EndOfConfig { phase }),
        (1u32..5).prop_map(|phase| BatchKind::StartOfConfig { phase }),
    ]
}

prop_compose! {
    fn arb_core()(
        view in 0u64..1000,
        seq in 0u64..100_000,
        root_m in arb_digest(),
        nonce_commit in arb_digest(),
        evidence_seq in 0u64..100_000,
        bitmap in any::<u64>(),
        gov_index in 0u64..100_000,
        checkpoint_digest in arb_digest(),
        kind in arb_kind(),
        committed_root in proptest::option::of(arb_digest()),
        primary in 0u32..64,
    ) -> PrePrepareCore {
        PrePrepareCore {
            view: View(view),
            seq: SeqNum(seq),
            root_m,
            nonce_commit: NonceCommitment(nonce_commit),
            evidence_seq: SeqNum(evidence_seq),
            evidence_bitmap: ReplicaBitmap(bitmap),
            gov_index: LedgerIdx(gov_index),
            checkpoint_digest,
            kind,
            committed_root,
            primary: ReplicaId(primary),
        }
    }
}

prop_compose! {
    fn arb_request()(
        proc in any::<u16>(),
        args in proptest::collection::vec(any::<u8>(), 0..64),
        client in any::<u64>(),
        gt in arb_digest(),
        min_index in 0u64..100_000,
        req_id in any::<u64>(),
        sig in arb_sig(),
    ) -> SignedRequest {
        SignedRequest {
            request: Request {
                action: RequestAction::App { proc: ProcId(proc), args },
                client: ClientId(client),
                gt_hash: gt,
                min_index: LedgerIdx(min_index),
                req_id,
            },
            sig,
        }
    }
}

proptest! {
    #[test]
    fn pre_prepare_roundtrips(core in arb_core(), root_g in arb_digest(), sig in arb_sig()) {
        let pp = PrePrepare { core, root_g, sig };
        prop_assert_eq!(PrePrepare::from_bytes(&pp.to_bytes()).unwrap(), pp);
    }

    #[test]
    fn signed_request_roundtrips(req in arb_request()) {
        prop_assert_eq!(SignedRequest::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn tx_entry_roundtrips(
        req in arb_request(),
        index in 0u64..100_000,
        ok in any::<bool>(),
        output in proptest::collection::vec(any::<u8>(), 0..64),
        ws in arb_digest(),
    ) {
        let entry = LedgerEntry::Tx(TxLedgerEntry {
            request: req,
            index: LedgerIdx(index),
            result: TxResult { ok, output, write_set_digest: ws },
        });
        prop_assert_eq!(LedgerEntry::from_bytes(&entry.to_bytes()).unwrap(), entry);
    }

    #[test]
    fn protocol_messages_roundtrip(
        core in arb_core(),
        root_g in arb_digest(),
        sig in arb_sig(),
        nonce in any::<[u8; 16]>(),
        hashes in proptest::collection::vec(arb_digest(), 0..8),
        req_ids in proptest::collection::vec(any::<u64>(), 0..4),
    ) {
        let msgs = vec![
            ProtocolMsg::PrePrepare {
                pp: PrePrepare { core: core.clone(), root_g, sig },
                batch: hashes.clone(),
            },
            ProtocolMsg::Prepare(Prepare {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                nonce_commit: core.nonce_commit,
                pp_digest: root_g,
                sig,
            }),
            ProtocolMsg::Commit(Commit {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                nonce: Nonce(nonce),
            }),
            ProtocolMsg::Reply(Reply {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                sig,
                nonce: Nonce(nonce),
                req_ids,
            }),
            ProtocolMsg::FetchRequests { hashes },
            ProtocolMsg::FetchEvidence { seq: core.seq },
        ];
        for m in msgs {
            prop_assert_eq!(ProtocolMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    /// Hostile input: decoding arbitrary bytes must error, never panic or
    /// over-allocate.
    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ProtocolMsg::from_bytes(&bytes);
        let _ = LedgerEntry::from_bytes(&bytes);
        let _ = SignedRequest::from_bytes(&bytes);
        let _ = PrePrepare::from_bytes(&bytes);
    }

    /// `encoded_len` must agree exactly with the materialized encoding for
    /// every message variant with a hand-written impl (framing layers size
    /// buffers from it, and a drifting impl must show up here).
    /// `GovReceipts` is the one variant not constructed: its `Receipt`
    /// payload uses the default `encoded_len` (encode-and-count), which is
    /// exact by construction and cannot drift.
    #[test]
    fn encoded_len_is_exact(
        core in arb_core(),
        root_g in arb_digest(),
        sig in arb_sig(),
        req in arb_request(),
        nonce in any::<[u8; 16]>(),
        hashes in proptest::collection::vec(arb_digest(), 0..8),
        req_ids in proptest::collection::vec(any::<u64>(), 0..4),
        output in proptest::collection::vec(any::<u8>(), 0..64),
        ok in any::<bool>(),
    ) {
        let pp = PrePrepare { core: core.clone(), root_g, sig };
        let prepare = Prepare {
            view: core.view,
            seq: core.seq,
            replica: core.primary,
            nonce_commit: core.nonce_commit,
            pp_digest: root_g,
            sig,
        };
        let msgs = vec![
            ProtocolMsg::Request(req.clone()),
            ProtocolMsg::PrePrepare { pp: pp.clone(), batch: hashes.clone() },
            ProtocolMsg::Prepare(prepare.clone()),
            ProtocolMsg::Commit(Commit {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                nonce: Nonce(nonce),
            }),
            ProtocolMsg::Reply(Reply {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                sig,
                nonce: Nonce(nonce),
                req_ids,
            }),
            ProtocolMsg::FetchRequests { hashes: hashes.clone() },
            ProtocolMsg::FetchRequestsResponse { requests: vec![req.clone()] },
            ProtocolMsg::FetchLedger { from_seq: core.seq },
            ProtocolMsg::FetchLedgerResponse { entries: vec![output.clone(), Vec::new()] },
            ProtocolMsg::FetchLedgerPage { from_seq: core.seq, max_bytes: 1 << 20 },
            ProtocolMsg::FetchLedgerPageResponse {
                entries: vec![output.clone(), Vec::new()],
                next_seq: core.seq,
                done: ok,
            },
            ProtocolMsg::FetchGovReceipts { from_index: core.gov_index },
            ProtocolMsg::FetchReceipt { tx_hash: root_g },
            ProtocolMsg::FetchEvidence { seq: core.seq },
            ProtocolMsg::FetchEvidenceResponse {
                prepares: vec![prepare.clone()],
                commits: Vec::new(),
            },
            ProtocolMsg::SignedAck { msg_digest: root_g, replica: core.primary, sig },
            ProtocolMsg::ReplyX(ia_ccf_types::messages::ReplyX {
                core: core.clone(),
                primary_sig: sig,
                tx_hash: root_g,
                index: core.gov_index,
                result: TxResult {
                    ok,
                    output: output.clone(),
                    write_set_digest: root_g,
                },
                path: ia_ccf_types::MerklePath {
                    index: 2,
                    tree_len: 5,
                    siblings: hashes.clone(),
                },
            }),
            ProtocolMsg::ViewChange(ia_ccf_types::messages::ViewChange {
                view: core.view,
                replica: core.primary,
                pps: vec![pp.clone()],
                last_proof: vec![prepare],
                sig,
            }),
            ProtocolMsg::NewView {
                nv: ia_ccf_types::messages::NewViewMsg {
                    view: core.view,
                    root_m: root_g,
                    vc_bitmap: core.evidence_bitmap,
                    vc_entry_hash: root_g,
                    sig,
                },
                view_changes: Vec::new(),
                resends: vec![(pp, hashes.clone())],
            },
        ];
        for m in msgs {
            prop_assert_eq!(m.encoded_len(), m.to_bytes().len());
        }
        let entry = LedgerEntry::Tx(TxLedgerEntry {
            request: req,
            index: core.gov_index,
            result: TxResult { ok, output, write_set_digest: root_g },
        });
        prop_assert_eq!(entry.encoded_len(), entry.to_bytes().len());
    }

    /// Frame round-trip: any payload survives encode → decode_exact, and
    /// any sequence of frames splits back into its payloads.
    #[test]
    fn frames_roundtrip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..6),
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            frame::encode(p, &mut buf);
        }
        let mut rest: &[u8] = &buf;
        for p in &payloads {
            let (payload, tail) = frame::split(rest).unwrap().expect("frame present");
            prop_assert_eq!(payload, &p[..]);
            rest = tail;
        }
        prop_assert!(rest.is_empty());
        // Single-frame exact decode.
        let mut single = Vec::new();
        frame::encode(&payloads[0], &mut single);
        prop_assert_eq!(frame::decode_exact(&single).unwrap(), &payloads[0][..]);
        // The stream reader reproduces the same payloads.
        let mut reader = std::io::Cursor::new(&buf);
        let mut scratch = Vec::new();
        for p in &payloads {
            frame::read_frame(&mut reader, &mut scratch).unwrap();
            prop_assert_eq!(&scratch, p);
        }
    }

    /// Truncated frames must error (exact decode) or report incomplete
    /// (streaming split) — never panic.
    #[test]
    fn truncated_frames_error(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut in any::<usize>(),
    ) {
        let mut buf = Vec::new();
        frame::encode(&payload, &mut buf);
        let cut = cut % buf.len(); // strictly shorter
        let truncated =
            matches!(frame::decode_exact(&buf[..cut]), Err(frame::FrameError::Truncated { .. }));
        prop_assert!(truncated);
        prop_assert!(frame::split(&buf[..cut]).unwrap().is_none());
        let mut reader = std::io::Cursor::new(&buf[..cut]);
        let mut scratch = Vec::new();
        prop_assert!(frame::read_frame(&mut reader, &mut scratch).is_err());
    }

    /// Oversized length prefixes must error, never panic or over-allocate
    /// — memory use is bounded by bytes actually received, not by the
    /// hostile prefix.
    #[test]
    fn oversized_prefixes_never_allocate(
        over in (frame::MAX_FRAME as u64 + 1)..=u32::MAX as u64,
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = (over as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        prop_assert!(matches!(frame::split(&buf), Err(frame::FrameError::Oversized(_))));
        prop_assert!(matches!(frame::decode_exact(&buf), Err(frame::FrameError::Oversized(_))));
        let mut reader = std::io::Cursor::new(&buf);
        let mut scratch = Vec::new();
        prop_assert!(frame::read_frame(&mut reader, &mut scratch).is_err());
        prop_assert_eq!(scratch.capacity(), 0, "hostile prefix must not allocate");
    }

    /// Arbitrary garbage through every frame decoder: errors or clean
    /// splits only, never a panic.
    #[test]
    fn frame_decoders_survive_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = frame::split(&bytes);
        let _ = frame::decode_exact(&bytes);
        let mut reader = std::io::Cursor::new(&bytes);
        let mut scratch = Vec::new();
        let _ = frame::read_frame(&mut reader, &mut scratch);
    }

    /// A wire message framed through the scratch encoder decodes back —
    /// the path every hot-path send takes.
    #[test]
    fn framed_messages_roundtrip(core in arb_core(), root_g in arb_digest(), sig in arb_sig()) {
        let msg = ProtocolMsg::PrePrepare {
            pp: PrePrepare { core, root_g, sig },
            batch: vec![root_g],
        };
        let mut scratch = Vec::new();
        let framed = frame::encode_msg(&msg, &mut scratch);
        let payload = frame::decode_exact(framed).unwrap();
        prop_assert_eq!(ProtocolMsg::from_bytes(payload).unwrap(), msg);
    }

    /// Truncation of a valid encoding must error, never panic.
    #[test]
    fn truncated_messages_error(core in arb_core(), root_g in arb_digest(), sig in arb_sig(), cut in 0usize..100) {
        let pp = PrePrepare { core, root_g, sig };
        let bytes = pp.to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(PrePrepare::from_bytes(&bytes[..cut]).is_err());
    }

    /// Hostile input per variant: an arbitrary body behind *every*
    /// `ProtocolMsg` tag byte (valid tags and invalid ones alike) must
    /// decode to `Ok` or `Err` — never panic or over-allocate. This
    /// drives every variant's decoder with garbage, not just whichever
    /// tags random bytes happen to start with.
    #[test]
    fn every_variant_tag_survives_garbage_bodies(
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Tags 0..=16 are the current variants; a few beyond must error.
        for tag in 0u8..=20 {
            let mut bytes = Vec::with_capacity(body.len() + 1);
            bytes.push(tag);
            bytes.extend_from_slice(&body);
            let _ = ProtocolMsg::from_bytes(&bytes);
        }
    }

    /// Hostile input for the paged state-transfer messages: every decoded
    /// page must be internally consistent or rejected — flipped `done`
    /// bytes, backwards continuation tokens, forged entry counts and
    /// oversized entry length prefixes can corrupt a transfer's *content*
    /// only in ways the requester-side checks see, never crash the
    /// decoder or cause a hostile allocation.
    #[test]
    fn fetch_ledger_page_variants_survive_hostility(
        entries in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 0..5),
        from in any::<u64>(),
        next in any::<u64>(),
        done_byte in any::<u8>(),
        forged_count in any::<u32>(),
        flip_pos in any::<usize>(),
        flip_mask in 1u8..=255,
    ) {
        // Roundtrip holds for any payload, including empty entry lists
        // and a `next_seq` *behind* `from_seq` — the wire layer carries
        // them faithfully; rejecting non-progressing tokens is the
        // requester state machine's job (tests/paged_fetch_equiv.rs).
        let req = ProtocolMsg::FetchLedgerPage { from_seq: SeqNum(from), max_bytes: next };
        prop_assert_eq!(ProtocolMsg::from_bytes(&req.to_bytes()).unwrap(), req);
        let resp = ProtocolMsg::FetchLedgerPageResponse {
            entries: entries.clone(),
            next_seq: SeqNum(next),
            done: done_byte % 2 == 0,
        };
        let bytes = resp.to_bytes();
        prop_assert_eq!(ProtocolMsg::from_bytes(&bytes).unwrap(), resp);
        prop_assert_eq!(bytes.len(), ProtocolMsg::FetchLedgerPageResponse {
            entries: entries.clone(),
            next_seq: SeqNum(next),
            done: done_byte % 2 == 0,
        }.encoded_len());

        // Flipped done flag: the trailing byte is the `done` bool; any
        // value outside {0, 1} must be a decode error, never a panic or
        // a silently-ambiguous continuation state.
        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() = done_byte;
        match ProtocolMsg::from_bytes(&flipped) {
            Ok(ProtocolMsg::FetchLedgerPageResponse { done, .. }) => {
                prop_assert!(done_byte <= 1 && done == (done_byte == 1));
            }
            Ok(other) => prop_assert!(false, "decoded into {other:?}"),
            Err(_) => prop_assert!(done_byte > 1),
        }

        // Forged entry count: overwrite the count prefix with an
        // arbitrary u32. Decoding must error (the claimed entries are
        // not there) or produce a consistent message — and must never
        // allocate for the forged count up front.
        let mut forged = bytes.clone();
        forged[1..5].copy_from_slice(&forged_count.to_le_bytes());
        if let Ok(decoded) = ProtocolMsg::from_bytes(&forged) {
            prop_assert_eq!(ProtocolMsg::from_bytes(&decoded.to_bytes()).unwrap(), decoded);
        }

        // An oversized length prefix on the first entry (when present):
        // error, not a multi-gigabyte allocation.
        if !entries.is_empty() {
            let mut oversized = bytes.clone();
            oversized[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
            prop_assert!(ProtocolMsg::from_bytes(&oversized).is_err());
        }

        // Arbitrary single-byte corruption anywhere: no panics.
        let mut corrupt = bytes;
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= flip_mask;
        let _ = ProtocolMsg::from_bytes(&corrupt);
    }

    /// Hostile input per variant: byte-level corruption of *valid*
    /// encodings of every constructible variant must never panic, and a
    /// successful decode of a corrupted buffer must still be internally
    /// consistent (re-encoding round-trips).
    #[test]
    fn corrupted_valid_encodings_never_panic(
        core in arb_core(),
        root_g in arb_digest(),
        sig in arb_sig(),
        req in arb_request(),
        nonce in any::<[u8; 16]>(),
        hashes in proptest::collection::vec(arb_digest(), 0..4),
        flip_pos in any::<u64>(),
        flip_mask in 1u8..=255,
    ) {
        let msgs = vec![
            ProtocolMsg::Request(req.clone()),
            ProtocolMsg::PrePrepare {
                pp: PrePrepare { core: core.clone(), root_g, sig },
                batch: hashes.clone(),
            },
            ProtocolMsg::Prepare(Prepare {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                nonce_commit: core.nonce_commit,
                pp_digest: root_g,
                sig,
            }),
            ProtocolMsg::Commit(Commit {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                nonce: Nonce(nonce),
            }),
            ProtocolMsg::Reply(Reply {
                view: core.view,
                seq: core.seq,
                replica: core.primary,
                sig,
                nonce: Nonce(nonce),
                req_ids: vec![req.request.req_id],
            }),
            ProtocolMsg::FetchRequests { hashes: hashes.clone() },
            ProtocolMsg::FetchRequestsResponse { requests: vec![req.clone()] },
            ProtocolMsg::FetchLedger { from_seq: core.seq },
            ProtocolMsg::FetchGovReceipts { from_index: core.gov_index },
            ProtocolMsg::FetchReceipt { tx_hash: root_g },
            ProtocolMsg::FetchEvidence { seq: core.seq },
            ProtocolMsg::FetchEvidenceResponse { prepares: Vec::new(), commits: Vec::new() },
            ProtocolMsg::FetchLedgerPage { from_seq: core.seq, max_bytes: flip_pos },
            ProtocolMsg::FetchLedgerPageResponse {
                entries: vec![vec![1, 2, 3], Vec::new()],
                next_seq: core.seq,
                done: true,
            },
        ];
        for msg in msgs {
            let mut bytes = msg.to_bytes();
            let pos = (flip_pos as usize) % bytes.len();
            bytes[pos] ^= flip_mask;
            if let Ok(decoded) = ProtocolMsg::from_bytes(&bytes) {
                // A decode that survives corruption must still be a
                // well-formed message.
                prop_assert_eq!(
                    ProtocolMsg::from_bytes(&decoded.to_bytes()).unwrap(),
                    decoded
                );
            }
        }
    }
}
