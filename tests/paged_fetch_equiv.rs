//! Differential harness for the paged FetchLedger protocol.
//!
//! Contract under test: paging is *invisible* in the transferred bytes.
//! For any committed schedule, any `from_seq` and any page budget —
//! including budgets of one byte (one batch segment per page) and budgets
//! larger than the whole remainder — the concatenation of
//! `FetchLedgerPageResponse` entries is byte-identical to the seed's
//! monolithic `FetchLedgerResponse` oracle
//! (`Replica::ledger_fetch_oracle`). On top of the byte-level
//! equivalence, a replica that crashes, misses traffic and recovers
//! through the paged state transfer must end with a ledger and KV digest
//! byte-identical to a replica that never crashed — and must detect and
//! fail over from Byzantine page servers (truncated pages, stalled
//! pages) to an honest one.

use std::sync::Arc;

use ia_ccf::core::app::CounterApp;
use ia_ccf::core::byzantine::Fault;
use ia_ccf::core::{Input, NodeId, Output, ProtocolParams};
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{LedgerIdx, ProtocolMsg, ReplicaId, SeqNum, Wire};
use proptest::prelude::*;

/// Commit `n_txs` counter increments with a round every `cadence`
/// submissions on a 4-replica cluster.
fn committed_cluster(n_txs: usize, cadence: usize, params: ProtocolParams) -> (ClusterSpec, DetCluster) {
    let spec = ClusterSpec::new(4, 2, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    for i in 0..n_txs {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("k{}", i % 5).into_bytes());
        if (i + 1) % cadence == 0 {
            cluster.round();
        }
    }
    assert!(
        cluster.run_until_finished(n_txs, 1_000),
        "finished {}/{n_txs}",
        cluster.finished.len()
    );
    (spec, cluster)
}

/// Drive the paged protocol against `server` to completion; returns the
/// concatenated entries and the number of pages.
fn fetch_all_pages(
    cluster: &mut DetCluster,
    server: ReplicaId,
    from_seq: u64,
    max_bytes: u64,
) -> (Vec<Vec<u8>>, usize) {
    let mut token = from_seq;
    let mut all = Vec::new();
    let mut pages = 0;
    loop {
        let replica = cluster.replicas.get_mut(&server).expect("server");
        let outs = replica.inner.handle(Input::Message {
            from: NodeId::Replica(ReplicaId(9)),
            msg: ProtocolMsg::FetchLedgerPage { from_seq: SeqNum(token), max_bytes },
        });
        let (entries, next_seq, done) = outs
            .into_iter()
            .find_map(|o| match o {
                Output::SendReplica(
                    _,
                    ProtocolMsg::FetchLedgerPageResponse { entries, next_seq, done },
                ) => Some((entries, next_seq, done)),
                _ => None,
            })
            .expect("page served");
        pages += 1;
        assert!(pages < 10_000, "paging did not terminate");
        all.extend(entries);
        if done {
            return (all, pages);
        }
        assert!(next_seq.0 > token, "continuation must advance");
        token = next_seq.0;
    }
}

/// Assert two replicas' full ledgers are byte-identical.
fn assert_ledgers_byte_identical(cluster: &DetCluster, a: ReplicaId, b: ReplicaId) {
    let (ra, rb) = (cluster.replica(a), cluster.replica(b));
    assert_eq!(ra.ledger().len(), rb.ledger().len(), "{a:?} vs {b:?}: ledger length");
    for i in 0..ra.ledger().len() {
        assert_eq!(
            ra.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            rb.ledger().entry(LedgerIdx(i)).map(Wire::to_bytes),
            "{a:?} vs {b:?}: ledger divergence at entry {i}"
        );
    }
    assert_eq!(ra.kv().digest(), rb.kv().digest(), "{a:?} vs {b:?}: KV digest");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Paged transfer is byte-identical to the monolithic oracle for
    /// random schedules, offsets and page budgets.
    #[test]
    fn paged_transfer_matches_monolithic_oracle(
        n_txs in 1usize..14,
        cadence in 1usize..4,
        from_off in 0u64..16,
        budget_pick in 0usize..5,
    ) {
        // Budgets: 1 byte (every page = exactly one batch segment), tiny,
        // mid, large, unbounded (single page covering the remainder).
        let budget = [1u64, 300, 1500, 64 * 1024, u64::MAX][budget_pick];
        let (_spec, mut cluster) = committed_cluster(n_txs, cadence, ProtocolParams::default());
        let max_seq = cluster.replica(ReplicaId(0)).prepared_up_to().0;
        // from_seq sweeps below, inside and past the served range.
        let from_seq = from_off.min(max_seq + 2);
        let (paged, pages) = fetch_all_pages(&mut cluster, ReplicaId(0), from_seq, budget);
        let oracle = cluster.replica(ReplicaId(0)).ledger_fetch_oracle(SeqNum(from_seq));
        prop_assert_eq!(&paged, &oracle, "paged != monolithic for from_seq={}", from_seq);
        // A one-byte budget forces batch-granular pages: as many pages as
        // batches in range (plus none when the range is empty).
        if budget == 1 {
            let batches = cluster
                .replica(ReplicaId(0))
                .ledger()
                .batch_seqs_from(SeqNum(from_seq))
                .len();
            prop_assert_eq!(pages, batches.max(1), "one segment per page at budget 1");
        }
    }

    /// A replica that crashed and recovered through paged state transfer
    /// is byte-identical to one that never crashed — across random
    /// schedules and page budgets — and rejoins consensus.
    #[test]
    fn recovered_replica_matches_survivor(
        n_before in 1usize..6,
        n_missed in 1usize..8,
        budget in prop_oneof![Just(1u64), Just(400u64), Just(4096u64), Just(u64::MAX)],
    ) {
        let params = ProtocolParams {
            sync_page_bytes: budget,
            view_timeout_ticks: 80,
            ..ProtocolParams::default()
        };
        let (spec, mut cluster) = committed_cluster(n_before, 2, params);
        // Replica 3 goes dark and misses a window of commits.
        cluster.crash(ReplicaId(3));
        for i in 0..n_missed {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, format!("m{}", i % 3).into_bytes());
            cluster.round();
        }
        let total = n_before + n_missed;
        prop_assert!(cluster.run_until_finished(total, 1_000));

        // Recover through the paged protocol from replica 0.
        cluster.recover(spec.build_replica(3, Arc::new(CounterApp)), ReplicaId(0));
        prop_assert!(
            cluster.run_until(60, |c| c.replica(ReplicaId(3)).sync_report().complete),
            "sync did not complete: {:?}",
            cluster.replica(ReplicaId(3)).sync_report()
        );
        let report = cluster.replica(ReplicaId(3)).sync_report();
        prop_assert_eq!(report.failovers, 0, "honest server: no failover");
        prop_assert!(report.pages >= 1);

        // The recovered replica rejoins consensus: new traffic lands on
        // its ledger like everyone else's.
        for i in 0..3 {
            let client = spec.clients[i % 2].0;
            cluster.submit(client, CounterApp::INCR, b"post".to_vec());
            cluster.round();
        }
        prop_assert!(cluster.run_until_finished(total + 3, 1_000));
        assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(1));
        cluster.assert_ledgers_consistent();
    }
}

// ----------------------------------------------------------------------
// Byzantine page servers (fault injection).
// ----------------------------------------------------------------------

/// Shared scaffold: commit a window with replica 3 dark, put `fault` on
/// replica 1, recover replica 3 *from* replica 1 and demand it completes
/// sync anyway — from an honest server, after detecting the misbehaviour.
fn recover_from_byzantine_server(fault: Fault) -> ia_ccf::core::SyncReport {
    let params = ProtocolParams {
        // Small pages so the fault hits mid-transfer, not just at `done`.
        sync_page_bytes: 400,
        view_timeout_ticks: 80,
        ..ProtocolParams::default()
    };
    let (spec, mut cluster) = committed_cluster(4, 2, params);
    cluster.crash(ReplicaId(3));
    for i in 0..6 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, format!("b{}", i % 3).into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(10, 1_000));

    cluster.set_fault(ReplicaId(1), fault);
    cluster.recover(spec.build_replica(3, Arc::new(CounterApp)), ReplicaId(1));
    assert!(
        cluster.run_until(120, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "sync must complete from an honest server: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    cluster.set_fault(ReplicaId(1), Fault::None);
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(2));
    report
}

#[test]
fn truncated_pages_are_detected_and_failed_over() {
    let report = recover_from_byzantine_server(Fault::TruncateLedgerPages);
    assert!(
        report.failovers >= 1,
        "the truncating server must be abandoned: {report:?}"
    );
}

#[test]
fn stalled_pages_are_detected_and_failed_over() {
    let report = recover_from_byzantine_server(Fault::StallLedgerPages);
    assert!(
        report.failovers >= 1,
        "the stalling server must be abandoned: {report:?}"
    );
}

/// A server that goes silent entirely (crashes mid-transfer) is caught by
/// the page timeout rather than a malformed page.
#[test]
fn silent_server_times_out_and_fails_over() {
    let params = ProtocolParams {
        sync_page_bytes: 400,
        sync_timeout_ticks: 4,
        view_timeout_ticks: 80,
        ..ProtocolParams::default()
    };
    let (spec, mut cluster) = committed_cluster(6, 2, params);
    cluster.crash(ReplicaId(3));
    for i in 0..4 {
        let client = spec.clients[i % 2].0;
        cluster.submit(client, CounterApp::INCR, b"w".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(10, 1_000));

    // Crash the chosen server *before* recovery starts: every page
    // request vanishes and only the timeout can save the sync.
    cluster.crash(ReplicaId(1));
    cluster.recover(spec.build_replica(3, Arc::new(CounterApp)), ReplicaId(1));
    assert!(
        cluster.run_until(200, |c| c.replica(ReplicaId(3)).sync_report().complete),
        "sync must fail over past a silent server: {:?}",
        cluster.replica(ReplicaId(3)).sync_report()
    );
    let report = cluster.replica(ReplicaId(3)).sync_report();
    assert!(report.failovers >= 1, "timeout must have fired: {report:?}");
    assert_ledgers_byte_identical(&cluster, ReplicaId(3), ReplicaId(2));
}

/// In a two-replica cluster the sole peer is the only possible server: a
/// stalled peer must be retried (with backoff) instead of the sync
/// silently dying, and the sync must complete once the peer heals.
#[test]
fn two_replica_recovery_retries_the_sole_peer() {
    let params = ProtocolParams {
        sync_page_bytes: 400,
        sync_timeout_ticks: 3,
        view_timeout_ticks: 200,
        ..ProtocolParams::default()
    };
    let spec = ClusterSpec::new(2, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;
    for i in 0..4 {
        cluster.submit(client, CounterApp::INCR, format!("t{i}").into_bytes());
        cluster.round();
    }
    assert!(cluster.run_until_finished(4, 400));
    cluster.crash(ReplicaId(1));

    // The only peer stalls every page: the sync must keep cycling
    // (failover → backoff pause → retry), never complete, never vanish.
    cluster.set_fault(ReplicaId(0), Fault::StallLedgerPages);
    cluster.recover(spec.build_replica(1, Arc::new(CounterApp)), ReplicaId(0));
    for _ in 0..30 {
        cluster.round();
    }
    let report = cluster.replica(ReplicaId(1)).sync_report();
    assert!(!report.complete, "stalled sole peer: sync cannot have completed");
    assert!(
        report.failovers >= 2,
        "the sole peer must be abandoned and retried repeatedly: {report:?}"
    );

    // Peer heals: the next retry completes the transfer.
    cluster.set_fault(ReplicaId(0), Fault::None);
    assert!(
        cluster.run_until(100, |c| c.replica(ReplicaId(1)).sync_report().complete),
        "sync must complete once the sole peer heals: {:?}",
        cluster.replica(ReplicaId(1)).sync_report()
    );
    assert_ledgers_byte_identical(&cluster, ReplicaId(1), ReplicaId(0));
}

/// A hostile server streaming a never-terminating batch segment (an
/// endless run of transaction entries that no grammar rule can close)
/// must be abandoned once the withheld buffer exceeds any honest batch —
/// memory stays bounded.
#[test]
fn endless_transaction_stream_is_bounded_and_abandoned() {
    use ia_ccf_types::{
        ClientId, KeyPair, LedgerEntry, ProcId, ReplicaBitmap, Request, RequestAction,
        SignedRequest, TxLedgerEntry, TxResult,
    };
    let params = ProtocolParams { batch_max: 4, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut fresh = spec.build_replica(3, Arc::new(CounterApp));
    let first_server = ReplicaId(0);
    let outs = fresh.begin_ledger_sync(first_server);
    // The sync opens with the tip query; answer it from every peer (no
    // checkpoint offers) so it proceeds to paging from `first_server`.
    assert!(outs.iter().any(|o| matches!(o, Output::SendReplica(_, ProtocolMsg::FetchLedgerTip))));
    let mut outs = Vec::new();
    for r in 0..3 {
        outs = fresh.handle(Input::Message {
            from: NodeId::Replica(ReplicaId(r)),
            msg: ProtocolMsg::LedgerTipResponse {
                tip: SeqNum(0),
                cp_seq: SeqNum(0),
                cp_kv_digest: ia_ccf_crypto::Digest::zero(),
                cp_tree_root: ia_ccf_crypto::Digest::zero(),
            },
        });
    }
    assert!(outs
        .iter()
        .any(|o| matches!(o, Output::SendReplica(r, ProtocolMsg::FetchLedgerPage { .. }) if *r == first_server)));

    let kp = KeyPair::from_label("hostile");
    let tx_kp = KeyPair::from_label("hostile-client");
    let gt = fresh.gt_hash();
    let junk_tx = move |i: u64| {
        LedgerEntry::Tx(TxLedgerEntry {
            request: SignedRequest::sign(
                Request {
                    action: RequestAction::App { proc: ProcId(1), args: vec![] },
                    client: ClientId(1),
                    gt_hash: gt,
                    min_index: LedgerIdx(0),
                    req_id: i,
                },
                &tx_kp,
            ),
            index: LedgerIdx(i),
            result: TxResult {
                ok: true,
                output: vec![],
                write_set_digest: ia_ccf_crypto::Digest::zero(),
            },
        })
        .to_bytes()
    };
    // Page 1 opens a batch segment (bare pre-prepare, no evidence) whose
    // transaction run then never ends.
    let mut pp = ia_ccf_types::messages::testutil::test_pp(0, 1, &kp);
    pp.core.evidence_bitmap = ReplicaBitmap::empty();
    let mut next = 2u64;
    let mut entries = vec![LedgerEntry::PrePrepare(pp).to_bytes(), junk_tx(1)];
    let mut fed = 0usize;
    loop {
        fed += entries.len();
        assert!(fed < 200, "buffer cap never tripped after {fed} entries");
        let outs = fresh.handle(Input::Message {
            from: NodeId::Replica(first_server),
            msg: ProtocolMsg::FetchLedgerPageResponse {
                entries: std::mem::take(&mut entries),
                next_seq: SeqNum(next),
                done: false,
            },
        });
        if fresh.sync_report().failovers >= 1 {
            // The cap tripped: the hostile server is abandoned and the
            // next page request goes to a *different* replica.
            assert!(outs.iter().any(|o| matches!(
                o,
                Output::SendReplica(r, ProtocolMsg::FetchLedgerPage { .. }) if *r != first_server
            )));
            break;
        }
        next += 1;
        entries = (0..8).map(|k| junk_tx(next * 100 + k)).collect();
    }
    // 4 × batch_max + 16 with batch_max 4 ⇒ the buffer never exceeded ~32
    // entries before the failover; nothing was ever applied.
    assert_eq!(fresh.prepared_up_to(), SeqNum(0));
    assert_eq!(fresh.ledger().len(), 1, "only genesis: junk was never applied");
}

// ----------------------------------------------------------------------
// Serving-side pins.
// ----------------------------------------------------------------------

/// A fetch from past the tip is an empty, immediately-done page whose
/// token does not move — the requester-side "nothing to sync" signal.
#[test]
fn fetch_past_the_tip_is_empty_and_done() {
    let (_spec, mut cluster) = committed_cluster(3, 1, ProtocolParams::default());
    let tip = cluster.replica(ReplicaId(0)).prepared_up_to().0;
    let replica = cluster.replicas.get_mut(&ReplicaId(0)).expect("replica 0");
    let outs = replica.inner.handle(Input::Message {
        from: NodeId::Replica(ReplicaId(9)),
        msg: ProtocolMsg::FetchLedgerPage { from_seq: SeqNum(tip + 10), max_bytes: u64::MAX },
    });
    let page = outs
        .into_iter()
        .find_map(|o| match o {
            Output::SendReplica(_, m @ ProtocolMsg::FetchLedgerPageResponse { .. }) => Some(m),
            _ => None,
        })
        .expect("page served");
    let ProtocolMsg::FetchLedgerPageResponse { entries, next_seq, done } = page else {
        unreachable!()
    };
    assert!(entries.is_empty());
    assert!(done);
    assert_eq!(next_seq, SeqNum(tip + 10));
}
