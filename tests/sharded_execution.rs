//! Differential harness for sharded KV execution.
//!
//! The sharding contract (see `crates/core/src/pipeline/execution.rs`):
//! for **any** shard count and **any** worker-pool size, a replica
//! produces byte-identical ledger entries, KV digests, receipts and
//! outputs to a fully serial replica driven by the same schedule —
//! sharding and the pool are local parallelism knobs, never consensus
//! parameters. This harness proves it differentially: proptest-generated
//! SmallBank schedules, with a conflict-skew parameter sweeping hot-key
//! contention from 0% (footprints almost never overlap — maximal
//! grouping) to 100% (every transaction fights over
//! [`ia_ccf_smallbank::HOT_ACCOUNTS`] keys — groups collapse toward
//! serial), executed on sharded clusters (shards ∈ {2, 8}, pool threads
//! ∈ {1, 2, 8}) and a serial cluster (shards = 1, pool = 1) from the
//! same seed. On top of byte equality, the sharded replica's ledger must
//! replay **clean through the auditor** (which re-executes on a plain
//! single store) — the end-to-end proof that audit replay cannot tell
//! parallel execution happened.

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, LedgerPackage, StoredReceipt};
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_smallbank::{populate, SmallBankApp, Workload, WorkloadOp};
use ia_ccf_types::{LedgerIdx, ReplicaId, SeqNum, Wire};
use proptest::prelude::*;

const ACCOUNTS: u64 = 12; // small account set → frequent footprint overlap
const INITIAL: i64 = 500;
const N_CLIENTS: usize = 3;

/// Everything observable about one run: per-replica encoded ledgers, KV
/// digests, and the encoded receipts + outputs in completion order.
#[derive(PartialEq, Eq, Debug)]
struct Observed {
    ledgers: Vec<Vec<Vec<u8>>>,
    kv_digests: Vec<[u8; 32]>,
    receipts: Vec<Vec<u8>>,
    outputs: Vec<(bool, Vec<u8>)>,
}

/// Drive one cluster with `shards` shards and `pool` worker-pool threads
/// through `ops` and collect everything observable; also audit the
/// resulting ledger against the receipts. The second return is the total
/// number of tasks the replicas' worker pools executed — zero proves a
/// run stayed fully inline, non-zero proves the pool engaged.
fn run(shards: usize, pool: usize, ops: &[WorkloadOp]) -> (Observed, u64) {
    let spec = ClusterSpec::new(4, N_CLIENTS, ProtocolParams::default())
        .with_shards(shards)
        .with_pool_threads(pool);
    let mut cluster = DetCluster::new(&spec, Arc::new(SmallBankApp));
    let mut seed_kv = ia_ccf::kv::KvStore::new();
    populate(&mut seed_kv, ACCOUNTS, INITIAL);
    let snapshot = seed_kv.checkpoint();
    for r in cluster.replicas.values_mut() {
        r.inner.prime_kv(&snapshot);
    }

    for (i, op) in ops.iter().enumerate() {
        let client = spec.clients[i % N_CLIENTS].0;
        cluster.submit(client, op.proc, op.args.clone());
        if i % 4 == 3 {
            cluster.round();
        }
    }
    assert!(
        cluster.run_until_finished(ops.len(), 1_000),
        "{shards} shards: finished {}/{}",
        cluster.finished.len(),
        ops.len()
    );
    cluster.assert_ledgers_consistent();

    // Audit: replay the sharded ledger on the auditor's plain serial
    // store against every receipt the clients collected.
    let receipts: Vec<StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts enabled"),
        })
        .collect();
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(1)), SeqNum(0));
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(SmallBankApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    assert!(
        matches!(outcome, AuditOutcome::Clean),
        "{shards} shards: audit not clean: {:?}",
        outcome.upom()
    );

    let n = spec.genesis.n() as u32;
    let mut ledgers = Vec::new();
    let mut kv_digests = Vec::new();
    for r in 0..n {
        let replica = cluster.replica(ReplicaId(r));
        ledgers.push(
            (0..replica.ledger().len())
                .map(|i| replica.ledger().entry(LedgerIdx(i)).expect("entry").to_bytes())
                .collect(),
        );
        kv_digests.push(*replica.kv().digest().as_bytes());
    }
    let pool_tasks = (0..n).map(|r| cluster.replica(ReplicaId(r)).pool().tasks_completed()).sum();
    (
        Observed {
            ledgers,
            kv_digests,
            receipts: cluster
                .finished
                .iter()
                .map(|(_, tx)| tx.receipt.as_ref().expect("receipt").to_bytes())
                .collect(),
            outputs: cluster.finished.iter().map(|(_, tx)| (tx.ok, tx.output.clone())).collect(),
        },
        pool_tasks,
    )
}

fn schedule(seed: u64, skew_pct: u8, len: usize) -> Vec<WorkloadOp> {
    let mut w = Workload::with_skew(ACCOUNTS, seed, skew_pct);
    (0..len).map(|_| w.next_op()).collect()
}

/// The acceptance-criteria sweep: (shards, pool threads) combinations at
/// representative skews, fixed seed — byte-identical everything. The
/// pool dimension includes pool > shards (the pool, not the shard count,
/// caps execution workers), pool < shards, and pool = 1 (every parallel
/// path degenerates to today's inline behaviour).
#[test]
fn shard_sweep_is_byte_identical_across_skews() {
    for skew in [0u8, 50, 100] {
        let ops = schedule(4242 + skew as u64, skew, 32);
        let (serial, serial_tasks) = run(1, 1, &ops);
        assert_eq!(serial_tasks, 0, "a 1-thread pool must never dispatch tasks");
        assert!(!serial.ledgers[0].is_empty(), "schedule produced no entries");
        assert_eq!(serial.receipts.len(), ops.len());
        for (shards, pool) in [(2usize, 2usize), (8, 8), (2, 8), (8, 2), (8, 1)] {
            let (parallel, tasks) = run(shards, pool, &ops);
            assert_eq!(
                parallel, serial,
                "skew {skew}%: ({shards} shards, {pool} pool threads) diverged from serial"
            );
            if pool > 1 {
                assert!(
                    tasks > 0,
                    "skew {skew}%: ({shards} shards, {pool} pool threads) never engaged the pool"
                );
            } else {
                assert_eq!(tasks, 0, "a 1-thread pool must never dispatch tasks");
            }
        }
    }
}

/// More conflict-free groups than shards: with 12 accounts at skew 0 a
/// batch regularly splits into more disjoint groups than a 2-shard store
/// has shards. The worker count is derived from the pool (8 threads),
/// not capped at the shard count — and the artifacts still match serial.
#[test]
fn more_groups_than_shards_uses_pool_and_stays_identical() {
    // Disjoint deposits: every tx touches exactly one distinct account,
    // so a 4-tx batch forms 4 singleton groups > 2 shards.
    let amount = 25i64.to_le_bytes();
    let ops: Vec<WorkloadOp> = (0..24u64)
        .map(|i| WorkloadOp {
            proc: ia_ccf_smallbank::DEPOSIT,
            args: [(i % ACCOUNTS).to_le_bytes().as_slice(), &amount].concat(),
        })
        .collect();
    let (serial, _) = run(1, 1, &ops);
    let (parallel, tasks) = run(2, 8, &ops);
    assert_eq!(parallel, serial, "(2 shards, 8 pool threads) diverged from serial");
    assert!(tasks > 0, "the pool must engage when groups exceed the shard count");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random schedules and skews: sharded (2 and 8, pool = shards) ≡
    /// serial, and the sharded ledger audits clean (asserted inside
    /// `run`).
    #[test]
    fn differential_sharded_vs_serial(
        seed in any::<u64>(),
        skew in 0..=100u8,
        len in 8..36usize,
    ) {
        let ops = schedule(seed, skew, len);
        let (serial, _) = run(1, 1, &ops);
        for shards in [2usize, 8] {
            let (parallel, _) = run(shards, shards, &ops);
            prop_assert_eq!(
                &parallel, &serial,
                "seed {} skew {}% len {}: {} shards diverged", seed, skew, len, shards
            );
        }
    }
}
