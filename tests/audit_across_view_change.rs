//! Auditing a ledger that contains a view change (§3.2: "view changes are
//! auditable"): an honest run whose primary crashed mid-stream must audit
//! **clean** — receipts certified in view 0 for batches re-proposed in
//! view 1 match by content — while a content change across the view change
//! still convicts.

use std::sync::Arc;

use ia_ccf::audit::{AuditOutcome, Auditor, LedgerPackage, StoredReceipt};
use ia_ccf::core::app::CounterApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{ReplicaId, SeqNum};

#[test]
fn honest_view_change_audits_clean() {
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let mut cluster = DetCluster::new(&spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;

    for _ in 0..6 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(6, 200));

    // Crash the view-0 primary; survivors change view and continue.
    cluster.crash(ReplicaId(0));
    for _ in 0..6 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(12, 600), "finished {}", cluster.finished.len());

    let receipts: Vec<StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts"),
        })
        .collect();
    // Receipts span both views.
    let views: std::collections::BTreeSet<u64> =
        receipts.iter().map(|r| r.receipt.view().0).collect();
    assert!(views.len() >= 2, "views: {views:?}");

    // Audit against a survivor's ledger (which contains the view-change
    // set and new-view entries): must be clean.
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(2)), SeqNum(0));
    let has_vc = package
        .entries
        .iter()
        .any(|e| matches!(e, ia_ccf_types::LedgerEntry::ViewChangeSet { .. }));
    assert!(has_vc, "ledger must contain the view change");
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    assert!(matches!(outcome, AuditOutcome::Clean), "{:?}", outcome.upom());
}

#[test]
fn view_change_ledger_still_convicts_wrong_execution() {
    // Same crash scenario, but every replica runs tampered logic: the
    // audit must still convict from the post-view-change ledger.
    use ia_ccf::core::byzantine::TamperedApp;
    let params = ProtocolParams { view_timeout_ticks: 15, ..ProtocolParams::default() };
    let spec = ClusterSpec::new(4, 1, params);
    let tampered = |_: usize| -> Arc<dyn ia_ccf::core::App> {
        Arc::new(TamperedApp::new(Arc::new(CounterApp), |proc, args, _| {
            (proc == CounterApp::READ && args == b"k").then(|| 424242u64.to_le_bytes().to_vec())
        }))
    };
    let mut cluster = DetCluster::with_apps(&spec, tampered);
    let client = spec.clients[0].0;

    for _ in 0..4 {
        cluster.submit(client, CounterApp::INCR, b"k".to_vec());
        cluster.round();
    }
    assert!(cluster.run_until_finished(4, 200));
    cluster.crash(ReplicaId(0));
    cluster.submit(client, CounterApp::READ, b"k".to_vec()); // the lie
    assert!(cluster.run_until_finished(5, 600));

    let receipts: Vec<StoredReceipt> = cluster
        .finished
        .iter()
        .map(|(_, tx)| StoredReceipt {
            request: tx.request.clone(),
            receipt: tx.receipt.clone().expect("receipts"),
        })
        .collect();
    let package = LedgerPackage::from_replica(cluster.replica(ReplicaId(1)), SeqNum(0));
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
    let outcome = auditor.audit(&receipts, &GovernanceChain::new(), &package);
    let upom = outcome.upom().expect("wrong execution must be found");
    assert_eq!(upom.kind, ia_ccf::audit::UpomKind::WrongExecution);
    assert!(upom.blamed.len() > spec.genesis.f(), "blamed: {:?}", upom.blamed);
}
