//! Governance fork detection (Lemma 7): misbehaving replicas run *two*
//! divergent reconfigurations from the same configuration — each branch
//! produces a perfectly valid governance chain, and a client on either
//! branch sees nothing wrong. Only when the two chains meet (two clients
//! exchange receipts, or an auditor collects both) does the fork become
//! provable: the replicas that signed both P-th end-of-configuration
//! batches are blamed.

use std::sync::Arc;

use ia_ccf::audit::{Auditor, UpomKind};
use ia_ccf::core::app::CounterApp;
use ia_ccf::core::ProtocolParams;
use ia_ccf::governance::chain::GovernanceChain;
use ia_ccf_sim::{ClusterSpec, DetCluster};
use ia_ccf_types::{
    ClientId, Configuration, GovAction, KeyPair, LedgerIdx, MemberDesc, MemberId, ReplicaDesc,
    ReplicaId, Request, RequestAction, SignedRequest,
};

/// Run one "branch" of the fork: the same replicas (same keys) pass a
/// referendum for `new_member_label` and return the resulting chain.
fn run_branch(spec: &ClusterSpec, new_member_label: &str, extra_warmup: usize) -> GovernanceChain {
    let mut cluster = DetCluster::new(spec, Arc::new(CounterApp));
    let client = spec.clients[0].0;
    let gt = cluster.replica(ReplicaId(0)).gt_hash();

    let mut new_config: Configuration = spec.genesis.clone();
    new_config.number = 1;
    let member_kp = KeyPair::from_label(new_member_label);
    let replica_kp = KeyPair::from_label(&format!("{new_member_label}-replica"));
    new_config.members.push(MemberDesc { id: MemberId(4), key: member_kp.public() });
    let payload = ReplicaDesc::endorsement_payload(ReplicaId(4), &replica_kp.public());
    new_config.replicas.push(ReplicaDesc {
        id: ReplicaId(4),
        key: replica_kp.public(),
        operator: MemberId(4),
        endorsement: member_kp.sign(&payload),
    });

    // Different prefixes on each branch (diverged histories).
    for _ in 0..extra_warmup {
        cluster.submit(client, CounterApp::INCR, b"w".to_vec());
        cluster.round();
    }

    cluster.submit_raw(
        ClientId(0),
        SignedRequest::sign(
            Request {
                action: RequestAction::Governance(GovAction::Propose {
                    proposal_id: 1,
                    new_config,
                }),
                client: ClientId(0),
                gt_hash: gt,
                min_index: LedgerIdx(0),
                req_id: 1,
            },
            &spec.member_keys[0],
        ),
    );
    cluster.round();
    for m in 0..3u32 {
        cluster.submit_raw(
            ClientId(m as u64),
            SignedRequest::sign(
                Request {
                    action: RequestAction::Governance(GovAction::Vote {
                        proposal_id: 1,
                        approve: true,
                    }),
                    client: ClientId(m as u64),
                    gt_hash: gt,
                    min_index: LedgerIdx(0),
                    req_id: 10 + m as u64,
                },
                &spec.member_keys[m as usize],
            ),
        );
        cluster.round();
    }
    assert!(cluster.run_until(400, |c| {
        c.replicas.values().all(|r| r.inner.active_config().number == 1)
    }));
    let mut chain = GovernanceChain::new();
    for link in cluster.replica(ReplicaId(1)).gov_chain() {
        chain.push(link.clone());
    }
    chain
}

#[test]
fn divergent_reconfigurations_yield_fork_upom() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    // The SAME replica keys seal two different configuration-1s on two
    // ledger branches (a fork: correct replicas would never sign both).
    let chain_a = run_branch(&spec, "branch-a-member", 1);
    let chain_b = run_branch(&spec, "branch-b-member", 3);

    // Each chain is individually valid — neither client suspects anything.
    chain_a.verify(&spec.genesis).expect("branch A verifies");
    chain_b.verify(&spec.genesis).expect("branch B verifies");

    // Brought together, they convict.
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
    let upom = auditor
        .check_fork_between_chains(&chain_a, &chain_b)
        .expect("both chains valid")
        .expect("fork must be detected");
    assert_eq!(upom.kind, UpomKind::GovernanceFork);
    assert!(
        upom.blamed.len() > spec.genesis.f(),
        "at least f+1 replicas signed both branches: {:?}",
        upom.blamed
    );
}

#[test]
fn identical_branches_are_not_a_fork() {
    let spec = ClusterSpec::new(4, 1, ProtocolParams::default());
    let chain_a = run_branch(&spec, "same-member", 2);
    let chain_b = run_branch(&spec, "same-member", 2);
    let auditor = Auditor::new(spec.genesis.clone(), Arc::new(CounterApp));
    // Identical deterministic branches: equivalent boundaries, no fork.
    assert!(auditor
        .check_fork_between_chains(&chain_a, &chain_b)
        .expect("valid chains")
        .is_none());
}
