//! Minimal `crossbeam` shim: the `channel` module only.

pub mod channel {
    //! An MPMC channel over `Mutex<VecDeque>` + `Condvar`, matching the
    //! fraction of crossbeam-channel's API this tree uses: unbounded and
    //! bounded flavors, clonable senders *and* receivers,
    //! `send`/`try_send`/`recv`/`try_recv`/`recv_timeout`, `len`, and
    //! disconnection when the last peer drops. On a bounded channel
    //! `send` blocks while full and `try_send` fails with
    //! [`TrySendError::Full`].

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a slot frees up in a bounded channel.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (messages go to whichever receiver pops
    /// first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by `send` when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` when the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by `try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity; the message is returned.
        Full(T),
        /// Every receiver is gone; the message is returned.
        Disconnected(T),
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel holding at most `cap` messages (`cap`
    /// must be at least 1 — rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        with_capacity(Some(cap))
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|p| p.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Queue a message; fails when all receivers are dropped. On a
        /// bounded channel, blocks while the queue is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.inner.lock();
            if let Some(cap) = self.inner.capacity {
                while q.len() >= cap {
                    if self.inner.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(msg));
                    }
                    q = self.inner.space.wait(q).unwrap_or_else(|p| p.into_inner());
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Queue a message without blocking: fails with `Full` when a
        /// bounded channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut q = self.inner.lock();
            if let Some(cap) = self.inner.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity (`None` = unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.capacity
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Take (and drop) the queue lock before notifying:
                // otherwise a receiver that has checked `senders` under
                // the lock but not yet parked in `wait` would miss this
                // wakeup and block forever.
                drop(self.inner.lock());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.lock();
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.inner.space.notify_one();
                    Ok(v)
                }
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity (`None` = unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.capacity
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Same lock-then-notify protocol as the Sender drop: a
                // bounded-channel sender mid check-then-wait on `space`
                // must not miss the disconnect wakeup.
                drop(self.inner.lock());
                self.inner.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(18));
        }

        #[test]
        fn drop_while_receiver_blocked_wakes_it() {
            // Regression: the last Sender dropping must take the queue
            // lock before notifying, or a receiver mid check-then-wait
            // misses the wakeup and recv() hangs forever.
            for _ in 0..50 {
                let (tx, rx) = unbounded::<u8>();
                let h = std::thread::spawn(move || rx.recv());
                std::thread::yield_now();
                drop(tx);
                let start = Instant::now();
                assert_eq!(h.join().unwrap(), Err(RecvError));
                assert!(start.elapsed() < Duration::from_secs(5));
            }
        }

        #[test]
        fn bounded_try_send_full_then_drains() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            assert_eq!(rx.capacity(), Some(2));
        }

        #[test]
        fn bounded_send_blocks_until_slot_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap();
                Instant::now()
            });
            std::thread::sleep(Duration::from_millis(30));
            let before_pop = Instant::now();
            assert_eq!(rx.recv(), Ok(1));
            let unblocked_at = h.join().unwrap();
            assert!(unblocked_at >= before_pop, "send returned before a slot freed");
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_send_wakes_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(30));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
