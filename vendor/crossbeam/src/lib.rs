//! Minimal `crossbeam` shim: the `channel` module only.

pub mod channel {
    //! An unbounded MPMC channel over `Mutex<VecDeque>` + `Condvar`,
    //! matching the fraction of crossbeam-channel's API this tree uses:
    //! clonable senders *and* receivers, `send`/`recv`/`try_recv`/
    //! `recv_timeout`, and disconnection when the last peer drops.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (messages go to whichever receiver pops
    /// first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by `send` when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` when the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|p| p.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Queue a message; fails when all receivers are dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.inner.lock().push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Take (and drop) the queue lock before notifying:
                // otherwise a receiver that has checked `senders` under
                // the lock but not yet parked in `wait` would miss this
                // wakeup and block forever.
                drop(self.inner.lock());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.lock();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(18));
        }

        #[test]
        fn drop_while_receiver_blocked_wakes_it() {
            // Regression: the last Sender dropping must take the queue
            // lock before notifying, or a receiver mid check-then-wait
            // misses the wakeup and recv() hangs forever.
            for _ in 0..50 {
                let (tx, rx) = unbounded::<u8>();
                let h = std::thread::spawn(move || rx.recv());
                std::thread::yield_now();
                drop(tx);
                let start = Instant::now();
                assert_eq!(h.join().unwrap(), Err(RecvError));
                assert!(start.elapsed() < Duration::from_secs(5));
            }
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
