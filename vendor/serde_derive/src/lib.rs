//! No-op `serde_derive` shim.
//!
//! The vendored `serde` crate provides blanket impls of its marker-level
//! `Serialize`/`Deserialize` traits, so the derives only need to accept
//! the attribute grammar (`#[serde(...)]`) and expand to nothing.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]` — expands to nothing (blanket impl applies).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]` — expands to nothing (blanket impl applies).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
