//! The `Strategy` trait and core combinators.

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy from a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wrap a generation function.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union { options, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights cover the sampled range")
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}
