//! Minimal `proptest` shim: a deterministic property-testing runner.
//!
//! Supports the subset this tree uses: `proptest!`, `prop_compose!`,
//! `prop_oneof!` (weighted and unweighted), `any::<T>()`, `Just`,
//! integer/float range strategies, tuple strategies, `.prop_map`,
//! `proptest::collection::vec`, `proptest::option::of`, `prop_assert*!`,
//! `prop_assume!` and `ProptestConfig { cases, .. }`.
//!
//! Differences from real proptest: no shrinking (failures print the
//! case's debug-formatted inputs when available via the assertion
//! message), and the RNG is seeded deterministically per test from the
//! test path (override the case count with `PROPTEST_CASES`).

use std::fmt;
use std::ops::Range;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the property errors.
    pub max_global_rejects: u32,
    /// Unused by the shim (kept for struct-update compatibility).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases, max_global_rejects: 4096, max_shrink_iters: 0 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving generation (xoshiro256**-ish).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (e.g. the test path) so every test
    /// gets a distinct, reproducible stream.
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run a property against `config.cases` generated inputs.
///
/// `run_case` generates inputs from the RNG and executes the body,
/// returning the case result plus a rendering of the inputs for failure
/// reports.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut run_case: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    let mut rng = TestRng::from_label(name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let (inputs, result) = run_case(&mut rng);
        match result {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest '{name}': too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {case}/{}:\n  {msg}\n  inputs: {inputs}",
                    config.cases
                );
            }
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy needs a non-empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy producing `Some` ~75% of the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Strategy generating any value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary + fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_for_int_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// The usual glob import: strategies, macros, config, assertion helpers.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Assert inside a proptest body; failure fails only this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Reject this case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Weighted / unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Compose several strategies into one through a constructor body:
/// `prop_compose! { fn name()(a in sa, b in sb) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($outer:tt)*) ($($arg:pat in $strategy:expr),+ $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                $body
            })
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            // The caller's metas include its own `#[test]`; don't add a
            // second one (libtest would register the test twice).
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                        let __inputs = String::new();
                        let __result = (|| -> $crate::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                        (__inputs, __result)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn point()(x in 0u64..100, y in 0u64..100) -> (u64, u64) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 5u64..10, b in -3i64..3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn composed_points(p in point()) {
            prop_assert!(p.0 < 100 && p.1 < 100);
        }

        #[test]
        fn oneof_vec_option(
            v in crate::collection::vec(any::<u8>(), 0..16),
            o in crate::option::of(1u32..5),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!(v.len() < 16);
            if let Some(x) = o {
                prop_assert!((1u32..5).contains(&x));
            }
            prop_assert!((1u8..5).contains(&pick));
        }

        #[test]
        fn weighted_oneof_and_assume(x in prop_oneof![3 => Just(0u8), 1 => Just(1u8)]) {
            prop_assume!(x == 0u8);
            prop_assert_eq!(x, 0u8);
        }

        #[test]
        fn tuples_and_maps(
            pair in (any::<bool>(), 0usize..50),
            mapped in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert!(pair.1 < 50);
            prop_assert!(mapped % 2 == 0 && mapped < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        let config = ProptestConfig { cases: 4, ..ProptestConfig::default() };
        crate::run_property("always_fails", &config, |_| {
            (String::new(), Err(TestCaseError::Fail("forced".into())))
        });
    }
}
