//! Minimal `criterion` shim: a wall-clock micro-harness.
//!
//! Implements the API surface `benches/micro.rs` uses — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — and reports the mean
//! time per iteration over a time-budgeted measurement loop. No
//! statistics beyond mean/min/max; swap in real criterion for rigor.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let name = name.to_string();
        run_one(self, &name, f);
    }
}

/// A named set of benchmarks sharing the criterion config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, f);
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, |b| f(b, input));
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

enum Mode {
    WarmUp { budget: Duration },
    Measure { budget: Duration, samples: u64 },
}

impl Bencher {
    /// Run `routine` repeatedly, timing it.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                while start.elapsed() < budget {
                    std::hint::black_box(routine());
                }
            }
            Mode::Measure { budget, samples } => {
                // Calibrate iterations per sample from a single run.
                let t0 = Instant::now();
                std::hint::black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let per_sample = (budget.as_nanos() / samples.max(1) as u128)
                    .checked_div(once.as_nanos())
                    .unwrap_or(1)
                    .clamp(1, 1_000_000) as u64;
                let mut iters = 1u64; // the calibration run counts
                let mut elapsed = once;
                for _ in 0..samples {
                    let s = Instant::now();
                    for _ in 0..per_sample {
                        std::hint::black_box(routine());
                    }
                    elapsed += s.elapsed();
                    iters += per_sample;
                }
                self.result = Some((elapsed, iters));
            }
        }
    }
}

fn run_one(criterion: &Criterion, label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut warm = Bencher { mode: Mode::WarmUp { budget: criterion.warm_up_time }, result: None };
    f(&mut warm);
    let mut bench = Bencher {
        mode: Mode::Measure {
            budget: criterion.measurement_time,
            samples: criterion.sample_size as u64,
        },
        result: None,
    };
    f(&mut bench);
    match bench.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:50} {:>12} iters  {:>14}/iter", iters, fmt_ns(per));
        }
        _ => println!("{label:50} (no measurement — closure never called iter)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: either `criterion_group!(name, fn...)` or
/// the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &42, |b, x| b.iter(|| x * 2));
        group.finish();
    }
}
