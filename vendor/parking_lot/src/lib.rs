//! Minimal `parking_lot` shim over `std::sync`.
//!
//! parking_lot's locks don't poison on panic; the std locks do. The shim
//! recovers the guard from a poisoned lock so the semantics match.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Condition variable re-export (std's API already matches).
pub use sync::Condvar;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
