//! Compile-only `serde` shim.
//!
//! Nothing in this workspace performs serde-driven (de)serialization at
//! runtime — the wire codec is hand-rolled in `ia_ccf_types::wire` — but
//! many types carry `#[derive(Serialize, Deserialize)]` so they stay
//! source-compatible with the real serde. This shim keeps those derives
//! and the few generic helper signatures compiling:
//!
//! * `Serialize` / `Deserialize` have blanket impls whose default method
//!   bodies return an "unsupported" error if ever invoked;
//! * the derive macros (re-exported from the vendored `serde_derive`)
//!   expand to nothing;
//! * `Serializer` / `Deserializer` / `ser::Error` / `de::Error` exist
//!   with real-serde-shaped signatures.

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization-side error helpers.
pub mod ser {
    use super::Display;

    /// Errors a `Serializer` can produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error helpers.
pub mod de {
    use super::Display;

    /// Errors a `Deserializer` can produce.
    pub trait Error: Sized + Display {
        /// Build an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize values (marker-level).
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;
}

/// A data format that can deserialize values (marker-level).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

/// A value serializable by any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`. The shim's default body reports that runtime
    /// serialization is unsupported.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let _ = serializer;
        Err(<S::Error as ser::Error>::custom(
            "vendored serde shim: runtime serialization is not supported",
        ))
    }
}

/// A value deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value. The shim's default body reports that runtime
    /// deserialization is unsupported.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let _ = deserializer;
        Err(<D::Error as de::Error>::custom(
            "vendored serde shim: runtime deserialization is not supported",
        ))
    }
}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
#[allow(dead_code)] // compile-surface fixtures; nothing reads the fields
mod tests {
    // Mirror how the tree uses the shim: derives on structs/enums with
    // serde field attributes must compile.
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Named {
        a: u32,
        #[serde(with = "fake_with")]
        b: [u8; 64],
    }

    mod fake_with {
        use crate::{Deserialize, Deserializer, Serialize, Serializer};

        pub fn serialize<S: Serializer>(v: &[u8; 64], s: S) -> Result<S::Ok, S::Error> {
            v.as_slice().serialize(s)
        }

        pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 64], D::Error> {
            let v: Vec<u8> = Vec::deserialize(d)?;
            v.try_into().map_err(|_| crate::de::Error::custom("bad length"))
        }
    }

    #[derive(Serialize, Deserialize)]
    enum Mixed {
        Unit,
        Tuple(u8, u16),
        Struct { x: Vec<u8> },
    }

    #[test]
    fn derives_compile() {
        let _ = Named { a: 1, b: [0; 64] };
        let _ = Mixed::Unit;
        let _ = Mixed::Tuple(1, 2);
        let _ = Mixed::Struct { x: vec![] };
    }
}
