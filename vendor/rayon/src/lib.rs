//! Minimal `rayon` shim: sequential fallback.
//!
//! `par_iter()` and friends return ordinary sequential iterators, so all
//! the adapter chains (`map`, `filter_map`, `enumerate`, `all`, `collect`)
//! come from `std::iter::Iterator` and behave identically — minus the
//! parallelism. Swap in the real rayon to restore it.

pub mod prelude {
    /// `&collection → iterator` — sequential stand-in for `rayon`'s
    /// `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter: Iterator;
        /// Iterate (sequentially) over shared references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `collection → iterator` — sequential stand-in for rayon's
    /// `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The iterator type.
        type Iter: Iterator;
        /// Iterate (sequentially) by value.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_sequential_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert!(v.par_iter().all(|x| *x > 0));
    }
}
