//! Arithmetic in GF(2^255 - 19), radix-51 representation.

/// A field element as five 51-bit limbs (little-endian), value
/// `l0 + l1·2^51 + l2·2^102 + l3·2^153 + l4·2^204`.
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub [u64; 5]);

const LOW_51: u64 = (1u64 << 51) - 1;

impl FieldElement {
    /// Additive identity.
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    /// Multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// A small integer constant.
    pub fn from_u64(v: u64) -> FieldElement {
        let mut fe = FieldElement::ZERO;
        fe.0[0] = v & LOW_51;
        fe.0[1] = v >> 51;
        fe
    }

    /// Parse 32 little-endian bytes (top bit ignored, per convention).
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        let load = |i: usize| -> u64 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(chunk)
        };
        FieldElement([
            load(0) & LOW_51,
            (load(6) >> 3) & LOW_51,
            (load(12) >> 6) & LOW_51,
            (load(19) >> 1) & LOW_51,
            (load(24) >> 12) & LOW_51,
        ])
    }

    /// Serialize to 32 little-endian bytes, fully reduced mod p.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut l = self.reduce_weak().0;
        // Canonical reduction: q = floor((value + 19) / 2^255), then
        // value - q·p == value + 19·q (mod 2^255).
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        let mut carry;
        carry = l[0] >> 51;
        l[0] &= LOW_51;
        l[1] += carry;
        carry = l[1] >> 51;
        l[1] &= LOW_51;
        l[2] += carry;
        carry = l[2] >> 51;
        l[2] &= LOW_51;
        l[3] += carry;
        carry = l[3] >> 51;
        l[3] &= LOW_51;
        l[4] += carry;
        l[4] &= LOW_51;

        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&(l[0] | (l[1] << 51)).to_le_bytes());
        out[8..16].copy_from_slice(&((l[1] >> 13) | (l[2] << 38)).to_le_bytes());
        out[16..24].copy_from_slice(&((l[2] >> 26) | (l[3] << 25)).to_le_bytes());
        out[24..32].copy_from_slice(&((l[3] >> 39) | (l[4] << 12)).to_le_bytes());
        out
    }

    /// Carry-propagate so every limb is below 2^52.
    fn reduce_weak(self) -> FieldElement {
        let mut l = self.0;
        let c0 = l[0] >> 51;
        let c1 = l[1] >> 51;
        let c2 = l[2] >> 51;
        let c3 = l[3] >> 51;
        let c4 = l[4] >> 51;
        l[0] &= LOW_51;
        l[1] &= LOW_51;
        l[2] &= LOW_51;
        l[3] &= LOW_51;
        l[4] &= LOW_51;
        l[0] += c4 * 19;
        l[1] += c0;
        l[2] += c1;
        l[3] += c2;
        l[4] += c3;
        FieldElement(l)
    }

    /// Field addition.
    pub fn add(&self, other: &FieldElement) -> FieldElement {
        let a = self.0;
        let b = other.0;
        FieldElement([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3], a[4] + b[4]])
            .reduce_weak()
    }

    /// Field subtraction.
    pub fn sub(&self, other: &FieldElement) -> FieldElement {
        let a = self.0;
        let b = other.0;
        // Add 2·p before subtracting so limbs never underflow.
        FieldElement([
            a[0] + 0xfffffffffffda - b[0],
            a[1] + 0xffffffffffffe - b[1],
            a[2] + 0xffffffffffffe - b[2],
            a[3] + 0xffffffffffffe - b[3],
            a[4] + 0xffffffffffffe - b[4],
        ])
        .reduce_weak()
    }

    /// Field negation.
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, other: &FieldElement) -> FieldElement {
        let a = self.0;
        let b = other.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;

        let r0 = m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let mut r1 = m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let mut r2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let mut r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let mut r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut out = [0u64; 5];
        let mut carry: u128;
        carry = r0 >> 51;
        out[0] = (r0 as u64) & LOW_51;
        r1 += carry;
        carry = r1 >> 51;
        out[1] = (r1 as u64) & LOW_51;
        r2 += carry;
        carry = r2 >> 51;
        out[2] = (r2 as u64) & LOW_51;
        r3 += carry;
        carry = r3 >> 51;
        out[3] = (r3 as u64) & LOW_51;
        r4 += carry;
        carry = r4 >> 51;
        out[4] = (r4 as u64) & LOW_51;
        out[0] += (carry as u64) * 19;

        FieldElement(out).reduce_weak()
    }

    /// Field squaring.
    pub fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// Exponentiation by a little-endian 256-bit exponent.
    pub fn pow(&self, exp_le: &[u8; 32]) -> FieldElement {
        let mut result = FieldElement::ONE;
        for byte in exp_le.iter().rev() {
            for bit in (0..8).rev() {
                result = result.square();
                if (byte >> bit) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// Multiplicative inverse (zero maps to zero).
    pub fn invert(&self) -> FieldElement {
        // p - 2 = 2^255 - 21.
        let mut e = [0xffu8; 32];
        e[0] = 0xeb;
        e[31] = 0x7f;
        self.pow(&e)
    }

    /// `self^((p-5)/8)`, the core of the square-root computation.
    pub fn pow_p58(&self) -> FieldElement {
        // (p - 5) / 8 = 2^252 - 3.
        let mut e = [0xffu8; 32];
        e[0] = 0xfd;
        e[31] = 0x0f;
        self.pow(&e)
    }

    /// Whether the canonical form is zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Low bit of the canonical form (the "sign" in point encoding).
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Constant-independent equality on canonical forms.
    pub fn ct_eq(&self, other: &FieldElement) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

/// `sqrt(-1) mod p`, computed once.
pub fn sqrt_m1() -> FieldElement {
    static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        // 2^((p-1)/4); (p - 1) / 4 = 2^253 - 5.
        let mut e = [0xffu8; 32];
        e[0] = 0xfb;
        e[31] = 0x1f;
        FieldElement::from_u64(2).pow(&e)
    })
}

/// The curve constant `d = -121665/121666 mod p`, computed once.
pub fn curve_d() -> FieldElement {
    static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        FieldElement::from_u64(121665).neg().mul(&FieldElement::from_u64(121666).invert())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut b = [0u8; 32];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = (i as u8).wrapping_mul(37).wrapping_add(1);
        }
        b[31] &= 0x7f;
        let fe = FieldElement::from_bytes(&b);
        assert_eq!(fe.to_bytes(), b);
    }

    #[test]
    fn add_sub_inverse() {
        let a = FieldElement::from_u64(123456789);
        let b = FieldElement::from_u64(987654321);
        let c = a.add(&b).sub(&b);
        assert!(c.ct_eq(&a));
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn mul_matches_small_ints() {
        let a = FieldElement::from_u64(1 << 40);
        let b = FieldElement::from_u64(1 << 20);
        let c = a.mul(&b);
        let mut expect = [0u8; 32];
        expect[7] = 0x10; // 2^60
        assert_eq!(c.to_bytes(), expect);
    }

    #[test]
    fn invert_is_inverse() {
        let a = FieldElement::from_u64(0xdeadbeefcafe);
        let inv = a.invert();
        assert!(a.mul(&inv).ct_eq(&FieldElement::ONE));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        assert!(i.square().ct_eq(&minus_one));
    }

    #[test]
    fn p_reduces_to_zero() {
        // p = 2^255 - 19 in little-endian bytes.
        let mut p = [0xffu8; 32];
        p[0] = 0xed;
        p[31] = 0x7f;
        // from_bytes masks to < 2^255, so p itself parses as p ≡ 0.
        assert!(FieldElement::from_bytes(&p).is_zero());
    }
}
