//! Minimal `ed25519-dalek` shim: a real RFC 8032 Ed25519 implementation
//! (from-scratch curve25519 field/point arithmetic, SHA-512 from the
//! vendored `sha2`). API-compatible with the fraction of `ed25519-dalek`
//! v2 this tree uses. Not constant-time — do not reuse outside this
//! repository's test/benchmark context.

mod field;
mod point;
mod scalar;

use point::EdwardsPoint;
use sha2::{Digest as _, Sha512};

/// Error produced by key parsing and signature verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ed25519 signature error")
    }
}

impl std::error::Error for SignatureError {}

/// Objects that can sign messages.
pub trait Signer<S> {
    /// Sign a message.
    fn sign(&self, msg: &[u8]) -> S;
}

/// Objects that can verify signatures.
pub trait Verifier<S> {
    /// Verify `signature` over `msg`.
    fn verify(&self, msg: &[u8], signature: &S) -> Result<(), SignatureError>;
}

/// A detached Ed25519 signature: `R ‖ s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// From the 64-byte wire form.
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        Signature { bytes: *bytes }
    }

    /// To the 64-byte wire form.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

/// An Ed25519 private key (with precomputed expanded parts).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    /// Clamped scalar `a`.
    a: [u8; 32],
    /// Second half of `SHA512(seed)`, the deterministic-nonce prefix.
    prefix: [u8; 32],
    /// Compressed public point `A = a·B`.
    public: [u8; 32],
}

impl SigningKey {
    /// Derive the key from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_bytes(seed: &[u8; 32]) -> SigningKey {
        let h = Sha512::digest(seed);
        let mut a = [0u8; 32];
        a.copy_from_slice(&h[..32]);
        a[0] &= 248;
        a[31] &= 127;
        a[31] |= 64;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public = EdwardsPoint::basepoint().mul_scalar(&a).compress();
        SigningKey { seed: *seed, a, prefix, public }
    }

    /// Generate a fresh key from `rng`.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R) -> SigningKey {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        SigningKey::from_bytes(&seed)
    }

    /// The seed bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.seed
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            bytes: self.public,
            point: EdwardsPoint::decompress(&self.public).expect("A = a·B is on the curve"),
        }
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(..)")
    }
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, msg: &[u8]) -> Signature {
        // r = H(prefix ‖ M) mod ℓ; R = r·B; k = H(R ‖ A ‖ M) mod ℓ;
        // s = k·a + r mod ℓ.
        let mut h = Sha512::new();
        h.update(self.prefix);
        h.update(msg);
        let r = scalar::reduce_bytes(&h.finalize());
        let big_r = EdwardsPoint::basepoint().mul_scalar(&r).compress();

        let mut h = Sha512::new();
        h.update(big_r);
        h.update(self.public);
        h.update(msg);
        let k = scalar::reduce_bytes(&h.finalize());
        let s = scalar::mul_add(&k, &self.a, &r);

        let mut bytes = [0u8; 64];
        bytes[..32].copy_from_slice(&big_r);
        bytes[32..].copy_from_slice(&s);
        Signature { bytes }
    }
}

/// An Ed25519 public key.
#[derive(Clone, Copy)]
pub struct VerifyingKey {
    bytes: [u8; 32],
    point: EdwardsPoint,
}

impl VerifyingKey {
    /// Parse a compressed public key; errors when the encoding is not a
    /// curve point.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<VerifyingKey, SignatureError> {
        let point = EdwardsPoint::decompress(bytes).ok_or(SignatureError)?;
        Ok(VerifyingKey { bytes: *bytes, point })
    }

    /// The compressed 32-byte form.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({:02x?})", &self.bytes[..4])
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&signature.bytes[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&signature.bytes[32..]);

        // Reject non-canonical s (malleability guard, RFC 8032 §5.1.7).
        if !scalar::is_canonical(&s_bytes) {
            return Err(SignatureError);
        }
        let big_r = EdwardsPoint::decompress(&r_bytes).ok_or(SignatureError)?;

        let mut h = Sha512::new();
        h.update(r_bytes);
        h.update(self.bytes);
        h.update(msg);
        let k = scalar::reduce_bytes(&h.finalize());

        // Check s·B == R + k·A.
        let lhs = EdwardsPoint::basepoint().mul_scalar(&s_bytes);
        let rhs = big_r.add(&self.point.mul_scalar(&k));
        if lhs.eq_point(&rhs) {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test1() {
        let seed: [u8; 32] =
            unhex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
                .try_into()
                .unwrap();
        let expect_pk =
            unhex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
        let key = SigningKey::from_bytes(&seed);
        assert_eq!(key.verifying_key().to_bytes().to_vec(), expect_pk);

        let sig = key.sign(b"");
        let expect_sig = unhex(
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        );
        assert_eq!(sig.to_bytes().to_vec(), expect_sig);
        key.verifying_key().verify(b"", &sig).unwrap();
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test2() {
        let seed: [u8; 32] =
            unhex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
                .try_into()
                .unwrap();
        let expect_pk =
            unhex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
        let key = SigningKey::from_bytes(&seed);
        assert_eq!(key.verifying_key().to_bytes().to_vec(), expect_pk);
        let sig = key.sign(&[0x72]);
        key.verifying_key().verify(&[0x72], &sig).unwrap();
    }

    #[test]
    fn sign_verify_roundtrip_and_rejections() {
        let key = SigningKey::from_bytes(&[7u8; 32]);
        let vk = key.verifying_key();
        let sig = key.sign(b"hello");
        vk.verify(b"hello", &sig).unwrap();
        assert!(vk.verify(b"hellp", &sig).is_err());

        let mut tampered = sig.to_bytes();
        tampered[0] ^= 1;
        assert!(vk.verify(b"hello", &Signature::from_bytes(&tampered)).is_err());

        let other = SigningKey::from_bytes(&[8u8; 32]);
        assert!(other.verifying_key().verify(b"hello", &sig).is_err());
    }

    #[test]
    fn zero_signature_rejected() {
        let key = SigningKey::from_bytes(&[1u8; 32]);
        let zero = Signature::from_bytes(&[0u8; 64]);
        assert!(key.verifying_key().verify(b"m", &zero).is_err());
    }

    #[test]
    fn generated_keys_are_distinct() {
        let mut rng = rand::rngs::OsRng;
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        assert_ne!(a.verifying_key().to_bytes(), b.verifying_key().to_bytes());
        let sig = a.sign(b"x");
        a.verifying_key().verify(b"x", &sig).unwrap();
    }

    #[test]
    fn public_key_roundtrip() {
        let key = SigningKey::from_bytes(&[9u8; 32]);
        let vk = key.verifying_key();
        let parsed = VerifyingKey::from_bytes(&vk.to_bytes()).unwrap();
        let sig = key.sign(b"roundtrip");
        parsed.verify(b"roundtrip", &sig).unwrap();
    }
}
