//! Arithmetic modulo the basepoint order
//! `ℓ = 2^252 + 27742317777372353535851937790883648493`.
//!
//! Simple and obviously-correct rather than fast: 256-bit values as four
//! u64 limbs, 512-bit reduction by binary shift-and-subtract.

/// ℓ as four little-endian u64 limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_assign(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d, b1) = a[i].overflowing_sub(b[i]);
        let (d, b2) = d.overflowing_sub(borrow);
        a[i] = d;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0);
}

/// `acc = 2·acc + bit (mod ℓ)`. Caller guarantees `acc < ℓ`.
fn shift_in_bit(acc: &mut [u64; 4], bit: u64) {
    let mut carry = bit;
    for limb in acc.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = new_carry;
    }
    // acc was < ℓ < 2^253, so 2·acc + 1 < 2^254: no limb overflow.
    debug_assert_eq!(carry, 0);
    if geq(acc, &L) {
        sub_assign(acc, &L);
    }
}

/// Reduce a little-endian byte string modulo ℓ.
pub fn reduce_bytes(input: &[u8]) -> [u8; 32] {
    let mut acc = [0u64; 4];
    for byte in input.iter().rev() {
        for bit in (0..8).rev() {
            shift_in_bit(&mut acc, ((byte >> bit) & 1) as u64);
        }
    }
    limbs_to_bytes(&acc)
}

fn bytes_to_limbs(b: &[u8; 32]) -> [u64; 4] {
    let mut l = [0u64; 4];
    for (i, chunk) in b.chunks_exact(8).enumerate() {
        l[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    l
}

fn limbs_to_bytes(l: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, limb) in l.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
    }
    out
}

/// `(a·b + c) mod ℓ` over little-endian 32-byte scalars.
pub fn mul_add(a: &[u8; 32], b: &[u8; 32], c: &[u8; 32]) -> [u8; 32] {
    let al = bytes_to_limbs(a);
    let bl = bytes_to_limbs(b);
    // Schoolbook 4×4 → 8-limb product.
    let mut prod = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u128;
        for j in 0..4 {
            let t = al[i] as u128 * bl[j] as u128 + prod[i + j] as u128 + carry;
            prod[i + j] = t as u64;
            carry = t >> 64;
        }
        prod[i + 4] = carry as u64;
    }
    // + c (c < 2^256; the sum fits in 512 + 1 bits — track the final carry).
    let cl = bytes_to_limbs(c);
    let mut carry = 0u128;
    for i in 0..8 {
        let t = prod[i] as u128 + if i < 4 { cl[i] as u128 } else { 0 } + carry;
        prod[i] = t as u64;
        carry = t >> 64;
    }
    debug_assert_eq!(carry, 0, "a·b + c with 256-bit inputs fits in 512 bits");
    let mut bytes = [0u8; 64];
    for (i, limb) in prod.iter().enumerate() {
        bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
    }
    reduce_bytes(&bytes)
}

/// Whether a 32-byte little-endian value is strictly below ℓ.
pub fn is_canonical(s: &[u8; 32]) -> bool {
    !geq(&bytes_to_limbs(s), &L)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ell_reduces_to_zero() {
        assert_eq!(reduce_bytes(&limbs_to_bytes(&L)), [0u8; 32]);
        let mut ell_plus_5 = L;
        ell_plus_5[0] += 5;
        let mut five = [0u8; 32];
        five[0] = 5;
        assert_eq!(reduce_bytes(&limbs_to_bytes(&ell_plus_5)), five);
    }

    #[test]
    fn small_values_pass_through() {
        let mut x = [0u8; 32];
        x[0] = 42;
        assert_eq!(reduce_bytes(&x), x);
        assert!(is_canonical(&x));
        assert!(!is_canonical(&limbs_to_bytes(&L)));
    }

    #[test]
    fn mul_add_small() {
        let n = |v: u64| {
            let mut b = [0u8; 32];
            b[..8].copy_from_slice(&v.to_le_bytes());
            b
        };
        assert_eq!(mul_add(&n(6), &n(7), &n(8)), n(50));
        assert_eq!(mul_add(&n(0), &n(7), &n(9)), n(9));
    }

    #[test]
    fn mul_add_wraps_mod_ell() {
        // (ℓ - 1)·2 + 3 = 2ℓ + 1 ≡ 1 (mod ℓ).
        let mut ell_minus_1 = L;
        ell_minus_1[0] -= 1;
        let a = limbs_to_bytes(&ell_minus_1);
        let two = {
            let mut b = [0u8; 32];
            b[0] = 2;
            b
        };
        let three = {
            let mut b = [0u8; 32];
            b[0] = 3;
            b
        };
        let mut one = [0u8; 32];
        one[0] = 1;
        assert_eq!(mul_add(&a, &two, &three), one);
    }

    #[test]
    fn reduce_max_512_bits() {
        // Must not panic and must produce something canonical.
        let out = reduce_bytes(&[0xffu8; 64]);
        assert!(is_canonical(&out));
    }
}
