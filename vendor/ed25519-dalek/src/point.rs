//! Edwards-curve points in extended twisted-Edwards coordinates
//! `(X : Y : Z : T)` with `x = X/Z`, `y = Y/Z`, `T = XY/Z`.

use crate::field::{curve_d, sqrt_m1, FieldElement};

/// A point on edwards25519.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

/// `2·d`, cached.
fn curve_2d() -> FieldElement {
    static CACHE: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let d = curve_d();
        d.add(&d)
    })
}

impl EdwardsPoint {
    /// The neutral element (0, 1).
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point B with y = 4/5 and even x.
    pub fn basepoint() -> EdwardsPoint {
        static CACHE: std::sync::OnceLock<EdwardsPoint> = std::sync::OnceLock::new();
        *CACHE.get_or_init(|| {
            let mut enc = [0x66u8; 32];
            enc[0] = 0x58;
            EdwardsPoint::decompress(&enc).expect("standard base point decodes")
        })
    }

    /// Unified point addition (add-2008-hwcd-3).
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&curve_2d()).mul(&other.t);
        let d = self.z.add(&self.z).mul(&other.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        EdwardsPoint { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Point doubling (dbl-2008-hwcd).
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let h = a.add(&b);
        let e = h.sub(&self.x.add(&self.y).square());
        let g = a.sub(&b);
        let f = c.add(&g);
        EdwardsPoint { x: e.mul(&f), y: g.mul(&h), z: f.mul(&g), t: e.mul(&h) }
    }

    /// Scalar multiplication by a little-endian 256-bit scalar
    /// (double-and-add; not constant-time — fine for a test shim).
    pub fn mul_scalar(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for byte in scalar_le.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Compress to the 32-byte encoding: y with the sign of x in the
    /// top bit.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; `None` when no curve point
    /// matches.
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let sign = bytes[31] >> 7 == 1;
        let y = FieldElement::from_bytes(bytes);
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = yy.mul(&curve_d()).add(&FieldElement::ONE);

        // x = sqrt(u/v) via x = u·v^3·(u·v^7)^((p-5)/8).
        let v3 = v.square().mul(&v);
        let v7 = v3.square().mul(&v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());

        let vxx = v.mul(&x.square());
        if !vxx.ct_eq(&u) {
            if vxx.ct_eq(&u.neg()) {
                x = x.mul(&sqrt_m1());
            } else {
                return None;
            }
        }
        if x.is_zero() && sign {
            return None;
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(EdwardsPoint { x, y, z: FieldElement::ONE, t: x.mul(&y) })
    }

    /// Equality via compressed encodings (projective coordinates are
    /// not unique).
    pub fn eq_point(&self, other: &EdwardsPoint) -> bool {
        self.compress() == other.compress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_roundtrips() {
        let b = EdwardsPoint::basepoint();
        let enc = b.compress();
        let mut expect = [0x66u8; 32];
        expect[0] = 0x58;
        assert_eq!(enc, expect);
        assert!(EdwardsPoint::decompress(&enc).unwrap().eq_point(&b));
    }

    #[test]
    fn addition_is_commutative_and_doubling_consistent() {
        let b = EdwardsPoint::basepoint();
        let b2 = b.double();
        let b3a = b2.add(&b);
        let b3b = b.add(&b2);
        assert!(b3a.eq_point(&b3b));
        let mut four = [0u8; 32];
        four[0] = 4;
        assert!(b2.double().eq_point(&b.mul_scalar(&four)));
    }

    #[test]
    fn identity_is_neutral() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&EdwardsPoint::identity()).eq_point(&b));
        let mut one = [0u8; 32];
        one[0] = 1;
        assert!(b.mul_scalar(&one).eq_point(&b));
        assert!(b.mul_scalar(&[0u8; 32]).eq_point(&EdwardsPoint::identity()));
    }

    #[test]
    fn group_order_annihilates() {
        // ℓ·B = identity for the basepoint order ℓ.
        let ell: [u8; 32] = [
            0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
            0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0x00, 0x10,
        ];
        let b = EdwardsPoint::basepoint();
        assert!(b.mul_scalar(&ell).eq_point(&EdwardsPoint::identity()));
    }
}
