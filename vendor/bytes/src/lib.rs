//! Minimal `bytes` shim: an immutable, cheaply clonable byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }
}
