//! Minimal `hex` shim: lowercase encoding (and decoding, for symmetry).

/// Encode bytes as a lowercase hex string.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    let mut out = String::with_capacity(data.as_ref().len() * 2);
    for b in data.as_ref() {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode a hex string; errors on odd length or non-hex characters.
pub fn decode(s: impl AsRef<[u8]>) -> Result<Vec<u8>, String> {
    let s = s.as_ref();
    if s.len() % 2 != 0 {
        return Err("odd length".into());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        (c as char).to_digit(16).map(|d| d as u8).ok_or_else(|| format!("bad hex char {c:#x}"))
    };
    s.chunks(2).map(|p| Ok(nibble(p[0])? << 4 | nibble(p[1])?)).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::encode([0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(super::decode("deadbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(super::decode("xyz").is_err());
    }
}
