//! Minimal `rand` shim: `RngCore`/`SeedableRng`/`Rng` traits, a
//! xoshiro256++ `StdRng`, and a `/dev/urandom`-backed `OsRng`.

use std::ops::Range;

/// Core random-byte source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Rejection sampling over the widened space keeps the
                // distribution uniform.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let v = rng.next_u64() as u128;
                    if v < limit {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let v = rng.next_u64() as u128;
                    if v < limit {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for `StdRng`).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The standard deterministic RNG: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut s: [u64; 4]) -> Self {
        if s.iter().all(|x| *x == 0) {
            // xoshiro must not start from the all-zero state.
            let mut sm = 0x9e3779b97f4a7c15u64;
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        StdRng::from_state(s)
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng::from_state([
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ])
    }
}

/// OS entropy source. Reads `/dev/urandom`; falls back to a
/// time-and-counter seeded `StdRng` on exotic platforms.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsRng;

impl RngCore for OsRng {
    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        use std::io::Read;
        if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
            if f.read_exact(dest).is_ok() {
                return;
            }
        }
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mix = nanos ^ COUNTER.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        StdRng::seed_from_u64(mix).fill_bytes(dest);
    }
}

/// `rand::rngs` module layout compatibility.
pub mod rngs {
    pub use super::{OsRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let b: u8 = rng.gen_range(0..5);
            assert!(b < 5);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = [0u8; 33];
        let mut b = [0u8; 33];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn os_rng_produces_entropy() {
        let mut r = OsRng;
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b, "astronomically unlikely");
    }

    #[test]
    fn from_seed_matches_layout() {
        let seed = [3u8; 32];
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
